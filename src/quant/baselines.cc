#include "src/quant/baselines.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"

namespace llmnpu {

namespace {

/** Gathers columns `cols` of x into a compact [M x |cols|] tensor. */
Tensor
GatherColumns(const Tensor& x, const std::vector<int>& cols)
{
    const int64_t m = x.Rows(), k = x.Cols();
    Tensor out({m, static_cast<int64_t>(cols.size())}, DType::kF32);
    const float* px = x.Data<float>();
    float* po = out.Data<float>();
    for (int64_t r = 0; r < m; ++r) {
        for (size_t i = 0; i < cols.size(); ++i) {
            LLMNPU_CHECK_LT(cols[i], k);
            po[r * static_cast<int64_t>(cols.size()) +
               static_cast<int64_t>(i)] = px[r * k + cols[i]];
        }
    }
    return out;
}

/** Gathers rows `rows` of w into a compact [|rows| x N] tensor. */
Tensor
GatherRows(const Tensor& w, const std::vector<int>& rows)
{
    const int64_t n = w.Cols();
    Tensor out({static_cast<int64_t>(rows.size()), n}, DType::kF32);
    const float* pw = w.Data<float>();
    float* po = out.Data<float>();
    for (size_t i = 0; i < rows.size(); ++i) {
        LLMNPU_CHECK_LT(rows[i], w.Rows());
        for (int64_t c = 0; c < n; ++c) {
            po[static_cast<int64_t>(i) * n + c] =
                pw[static_cast<int64_t>(rows[i]) * n + c];
        }
    }
    return out;
}

/** Median of a copy of `v`. */
float
MedianOf(std::vector<float> v)
{
    LLMNPU_CHECK(!v.empty());
    std::nth_element(v.begin(), v.begin() + static_cast<long>(v.size() / 2),
                     v.end());
    return v[v.size() / 2];
}

}  // namespace

// --------------------------------------------------------------------------
// PerTensorExecutor
// --------------------------------------------------------------------------

PerTensorExecutor::PerTensorExecutor(const ModelWeights& weights)
    : weights_(weights)
{
    const auto& config = weights.config;
    q_.resize(static_cast<size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
        q_[static_cast<size_t>(l)].resize(7);
        for (const auto& spec : config.LayerLinears()) {
            q_[static_cast<size_t>(l)]
              [static_cast<size_t>(LinearKindIndex(spec.kind))] =
                QuantizePerColumn(weights.Linear(l, spec.kind));
        }
    }
}

Tensor
PerTensorExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    const QuantParams params = ComputeSymmetricScale(x);
    Tensor x_q = QuantizeSymmetric(x, params);
    const auto& w = q_[static_cast<size_t>(layer)]
                      [static_cast<size_t>(LinearKindIndex(kind))];
    return MatMulW8A8PerTensor(x_q, params.scale, w.q, w.scales);
}

// --------------------------------------------------------------------------
// KQuantExecutor
// --------------------------------------------------------------------------

KQuantExecutor::KQuantExecutor(const ModelWeights& weights, int group_size)
    : weights_(weights), group_size_(group_size)
{
    const auto& config = weights.config;
    q_.resize(static_cast<size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
        q_[static_cast<size_t>(l)].resize(7);
        for (const auto& spec : config.LayerLinears()) {
            q_[static_cast<size_t>(l)]
              [static_cast<size_t>(LinearKindIndex(spec.kind))] =
                QuantizePerGroup(weights.Linear(l, spec.kind), group_size_);
        }
    }
}

Tensor
KQuantExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    const auto& w = q_[static_cast<size_t>(layer)]
                      [static_cast<size_t>(LinearKindIndex(kind))];
    return MatMulPerGroup(x, w);
}

Tensor
KQuantExecutor::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                             const BatchSegments& segments)
{
    // Per-(row, group) activation scales never cross rows, so the stacked
    // per-group matmul is bitwise identical to per-segment calls.
    (void)segments;
    return Forward(layer, kind, x);
}

// --------------------------------------------------------------------------
// AwqExecutor
// --------------------------------------------------------------------------

AwqExecutor::AwqExecutor(const ModelWeights& weights,
                         const CalibrationData& calib, int group_size,
                         double alpha)
    : weights_(weights)
{
    const auto& config = weights.config;
    w_eff_.resize(static_cast<size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
        w_eff_[static_cast<size_t>(l)].resize(7);
        for (const auto& spec : config.LayerLinears()) {
            const Tensor& w = weights.Linear(l, spec.kind);
            const auto& stats = calib.Stats(l, spec.kind);
            LLMNPU_CHECK_EQ(stats.channel_mean_abs.size(),
                            static_cast<size_t>(spec.k));

            // Activation-aware channel scales, normalized to geomean 1.
            std::vector<double> s(static_cast<size_t>(spec.k));
            double log_sum = 0.0;
            for (int64_t kk = 0; kk < spec.k; ++kk) {
                const double a =
                    std::max(1e-5, static_cast<double>(
                                       stats.channel_mean_abs
                                           [static_cast<size_t>(kk)]));
                s[static_cast<size_t>(kk)] = std::pow(a, alpha);
                log_sum += std::log(s[static_cast<size_t>(kk)]);
            }
            const double norm = std::exp(
                log_sum / static_cast<double>(spec.k));
            for (auto& v : s) v /= norm;

            // Scale weight rows, quantize per group, unscale: rows carrying
            // salient activations get finer effective resolution.
            Tensor w_scaled = w;
            float* pw = w_scaled.Data<float>();
            for (int64_t kk = 0; kk < spec.k; ++kk) {
                for (int64_t c = 0; c < spec.n; ++c) {
                    pw[kk * spec.n + c] *=
                        static_cast<float>(s[static_cast<size_t>(kk)]);
                }
            }
            PerGroupWeights pg = QuantizePerGroup(w_scaled, group_size);
            Tensor w_deq = DequantizePerGroup(pg);
            float* pd = w_deq.Data<float>();
            for (int64_t kk = 0; kk < spec.k; ++kk) {
                for (int64_t c = 0; c < spec.n; ++c) {
                    pd[kk * spec.n + c] /=
                        static_cast<float>(s[static_cast<size_t>(kk)]);
                }
            }
            w_eff_[static_cast<size_t>(l)]
                  [static_cast<size_t>(LinearKindIndex(spec.kind))] =
                std::move(w_deq);
        }
    }
}

Tensor
AwqExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    return MatMulF32(x, w_eff_[static_cast<size_t>(layer)]
                              [static_cast<size_t>(LinearKindIndex(kind))]);
}

Tensor
AwqExecutor::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                          const BatchSegments& segments)
{
    // Weight-only quantization: activations stay float and the f32 kernel
    // computes each row with a fixed K-ascending order.
    (void)segments;
    return Forward(layer, kind, x);
}

// --------------------------------------------------------------------------
// SmoothQuantExecutor
// --------------------------------------------------------------------------

SmoothQuantExecutor::SmoothQuantExecutor(const ModelWeights& weights,
                                         const CalibrationData& calib,
                                         double alpha)
{
    const auto& config = weights.config;
    q_.resize(static_cast<size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
        q_[static_cast<size_t>(l)].resize(7);
        for (const auto& spec : config.LayerLinears()) {
            const Tensor& w = weights.Linear(l, spec.kind);
            const auto& stats = calib.Stats(l, spec.kind);

            SmoothedLinear sl;
            sl.inv_smooth.resize(static_cast<size_t>(spec.k));
            Tensor w_smooth = w;
            float* pw = w_smooth.Data<float>();
            float smoothed_absmax = 0.0f;
            for (int64_t kk = 0; kk < spec.k; ++kk) {
                // Per-channel weight absmax.
                float w_absmax = 0.0f;
                for (int64_t c = 0; c < spec.n; ++c) {
                    w_absmax = std::max(w_absmax,
                                        std::abs(pw[kk * spec.n + c]));
                }
                const float x_absmax = std::max(
                    1e-5f, stats.channel_absmax[static_cast<size_t>(kk)]);
                const float s = std::max(
                    1e-5f,
                    static_cast<float>(
                        std::pow(x_absmax, alpha) /
                        std::pow(std::max(w_absmax, 1e-5f), 1.0 - alpha)));
                sl.inv_smooth[static_cast<size_t>(kk)] = 1.0f / s;
                for (int64_t c = 0; c < spec.n; ++c) {
                    pw[kk * spec.n + c] *= s;
                }
                smoothed_absmax = std::max(smoothed_absmax, x_absmax / s);
            }
            sl.weights = QuantizePerColumn(w_smooth);
            // Static per-tensor activation scale, profiled offline — this
            // (plus outlier migration into weights) is SmoothQuant's
            // accuracy weakness the paper measures in Table 6.
            sl.static_act_scale = smoothed_absmax > 0.0f
                                      ? smoothed_absmax / 127.0f
                                      : 1.0f;
            q_[static_cast<size_t>(l)]
              [static_cast<size_t>(LinearKindIndex(spec.kind))] =
                std::move(sl);
        }
    }
}

Tensor
SmoothQuantExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    const auto& sl = q_[static_cast<size_t>(layer)]
                       [static_cast<size_t>(LinearKindIndex(kind))];
    Tensor x_smooth = x;
    float* px = x_smooth.Data<float>();
    const int64_t m = x.Rows(), k = x.Cols();
    LLMNPU_CHECK_EQ(static_cast<size_t>(k), sl.inv_smooth.size());
    for (int64_t r = 0; r < m; ++r) {
        for (int64_t c = 0; c < k; ++c) {
            px[r * k + c] *= sl.inv_smooth[static_cast<size_t>(c)];
        }
    }
    QuantParams params{sl.static_act_scale};
    Tensor x_q = QuantizeSymmetric(x_smooth, params);
    return MatMulW8A8PerTensor(x_q, params.scale, sl.weights.q,
                               sl.weights.scales);
}

Tensor
SmoothQuantExecutor::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                                  const BatchSegments& segments)
{
    // Smoothing and the static activation scale are offline constants, so
    // quantization is element-wise and the stacked call is exact.
    (void)segments;
    return Forward(layer, kind, x);
}

// --------------------------------------------------------------------------
// LlmInt8Executor
// --------------------------------------------------------------------------

LlmInt8Executor::LlmInt8Executor(const ModelWeights& weights,
                                 const CalibrationData& calib,
                                 double outlier_threshold)
    : weights_(weights)
{
    const auto& config = weights.config;
    q_.resize(static_cast<size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
        q_[static_cast<size_t>(l)].resize(7);
        for (const auto& spec : config.LayerLinears()) {
            const Tensor& w = weights.Linear(l, spec.kind);
            const auto& stats = calib.Stats(l, spec.kind);

            DecomposedLinear dl;
            const float median = MedianOf(stats.channel_absmax);
            const float cut =
                static_cast<float>(outlier_threshold) * std::max(median, 1e-5f);
            for (int64_t kk = 0; kk < spec.k; ++kk) {
                if (stats.channel_absmax[static_cast<size_t>(kk)] > cut) {
                    dl.outlier_channels.push_back(static_cast<int>(kk));
                } else {
                    dl.normal_channels.push_back(static_cast<int>(kk));
                }
            }
            dl.w_outlier = GatherRows(w, dl.outlier_channels);
            PerColumnWeights pc =
                QuantizePerColumn(GatherRows(w, dl.normal_channels));
            dl.w_normal_q = std::move(pc.q);
            dl.w_scales = std::move(pc.scales);
            q_[static_cast<size_t>(l)]
              [static_cast<size_t>(LinearKindIndex(spec.kind))] =
                std::move(dl);
        }
    }
}

size_t
LlmInt8Executor::NumOutlierChannels(int layer, LinearKind kind) const
{
    return q_[static_cast<size_t>(layer)]
             [static_cast<size_t>(LinearKindIndex(kind))]
                 .outlier_channels.size();
}

Tensor
LlmInt8Executor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    const auto& dl = q_[static_cast<size_t>(layer)]
                       [static_cast<size_t>(LinearKindIndex(kind))];
    const int64_t m = x.Rows();

    // Normal channels: vector-wise int8 (per-row activation scales).
    Tensor x_norm = GatherColumns(x, dl.normal_channels);
    std::vector<float> row_scales(static_cast<size_t>(m));
    Tensor x_q(x_norm.shape(), DType::kI8);
    {
        const float* px = x_norm.Data<float>();
        int8_t* pq = x_q.Data<int8_t>();
        const int64_t k = x_norm.Cols();
        for (int64_t r = 0; r < m; ++r) {
            float absmax = 0.0f;
            for (int64_t c = 0; c < k; ++c) {
                absmax = std::max(absmax, std::abs(px[r * k + c]));
            }
            const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
            row_scales[static_cast<size_t>(r)] = scale;
            const float inv = 1.0f / scale;
            for (int64_t c = 0; c < k; ++c) {
                pq[r * k + c] = static_cast<int8_t>(std::clamp(
                    std::nearbyint(px[r * k + c] * inv), -127.0f, 127.0f));
            }
        }
    }
    Tensor y = MatMulW8A8RowCol(x_q, row_scales, dl.w_normal_q, dl.w_scales);

    // Outlier channels: float path.
    if (!dl.outlier_channels.empty()) {
        Tensor x_out = GatherColumns(x, dl.outlier_channels);
        Tensor y_out = MatMulF32(x_out, dl.w_outlier);
        AddInPlace(y, y_out);
    }
    return y;
}

Tensor
LlmInt8Executor::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                              const BatchSegments& segments)
{
    // The outlier channel set is static (calibration-time) and activation
    // scales are per row, so the stacked decomposition is exact.
    (void)segments;
    return Forward(layer, kind, x);
}

}  // namespace llmnpu
