#include "src/quant/calibration.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/matmul.h"

namespace llmnpu {

int
LinearKindIndex(LinearKind kind)
{
    return static_cast<int>(kind);
}

float
LinearStats::ChannelAbsmaxQuantile(double q) const
{
    LLMNPU_CHECK(!channel_absmax.empty());
    std::vector<float> sorted = channel_absmax;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return static_cast<float>(sorted[lo] * (1.0 - frac) + sorted[hi] * frac);
}

namespace {

/** fp32 executor that records activation stats before each matmul. */
class RecordingExecutor : public LinearExecutor
{
  public:
    RecordingExecutor(const ModelWeights& weights, CalibrationData& data)
        : weights_(weights), data_(data)
    {}

    Tensor
    Forward(int layer, LinearKind kind, const Tensor& x) override
    {
        LinearStats& stats = data_.MutableStats(layer, kind);
        const int64_t rows = x.Rows(), cols = x.Cols();
        if (stats.channel_absmax.empty()) {
            stats.channel_absmax.assign(static_cast<size_t>(cols), 0.0f);
            stats.channel_mean_abs.assign(static_cast<size_t>(cols), 0.0f);
        }
        const float* p = x.Data<float>();
        for (int64_t r = 0; r < rows; ++r) {
            for (int64_t c = 0; c < cols; ++c) {
                const float a = std::abs(p[r * cols + c]);
                auto idx = static_cast<size_t>(c);
                stats.channel_absmax[idx] = std::max(stats.channel_absmax[idx],
                                                     a);
                stats.channel_mean_abs[idx] += a;
                stats.tensor_absmax = std::max(stats.tensor_absmax, a);
            }
        }
        stats.rows_seen += rows;
        return MatMulF32Packed(x, weights_.PackedLinear(layer, kind));
    }

    std::string Name() const override { return "calibration"; }

  private:
    const ModelWeights& weights_;
    CalibrationData& data_;
};

}  // namespace

CalibrationData
CalibrationData::Collect(const Transformer& model,
                         const std::vector<std::vector<int>>& corpus)
{
    CalibrationData data;
    data.per_layer_.assign(
        static_cast<size_t>(model.config().num_layers),
        std::vector<LinearStats>(static_cast<size_t>(kNumKinds)));

    RecordingExecutor recorder(model.weights(), data);
    for (const auto& tokens : corpus) {
        LLMNPU_CHECK(!tokens.empty());
        KvCache cache = model.MakeCache();
        model.Forward(tokens, cache, recorder);
    }
    // Convert mean-abs accumulators into means.
    for (auto& layer : data.per_layer_) {
        for (auto& stats : layer) {
            if (stats.rows_seen == 0) continue;
            for (auto& v : stats.channel_mean_abs) {
                v /= static_cast<float>(stats.rows_seen);
            }
        }
    }
    return data;
}

const LinearStats&
CalibrationData::Stats(int layer, LinearKind kind) const
{
    return per_layer_[static_cast<size_t>(layer)]
                     [static_cast<size_t>(LinearKindIndex(kind))];
}

LinearStats&
CalibrationData::MutableStats(int layer, LinearKind kind)
{
    return per_layer_[static_cast<size_t>(layer)]
                     [static_cast<size_t>(LinearKindIndex(kind))];
}

}  // namespace llmnpu
