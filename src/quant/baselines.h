/**
 * @file
 * Baseline quantization algorithms (Table 4): naive per-tensor, K-Quant-like
 * per-group, AWQ-like weight-only per-group, SmoothQuant-like smoothed
 * per-tensor, and LLM.Int8()-like mixed-precision decomposition.
 *
 * Each is a LinearExecutor, so accuracy comparisons (Table 6, Figure 4)
 * run the identical transformer forward pass and differ only in the linear
 * kernel — the same discipline the paper uses.
 */
#ifndef LLMNPU_QUANT_BASELINES_H
#define LLMNPU_QUANT_BASELINES_H

#include <memory>
#include <vector>

#include "src/quant/calibration.h"
#include "src/tensor/quantize.h"

namespace llmnpu {

/**
 * Naive per-tensor W8A8: dynamic per-tensor activation scale (max-min
 * symmetric [47]) + per-output-channel int8 weights. No outlier handling —
 * outliers blow up the activation scale and crush normal values, which is
 * the failure mode motivating §3.3.
 */
class PerTensorExecutor : public LinearExecutor
{
  public:
    explicit PerTensorExecutor(const ModelWeights& weights);

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    // No ForwardBatch override: the dynamic per-tensor activation scale is
    // computed from every row of x, so a stacked call would couple the
    // sequences' quantization grids. The per-segment base implementation is
    // the only exact batched form.
    std::string Name() const override { return "PerTensor-W8A8"; }

  private:
    const ModelWeights& weights_;
    std::vector<std::vector<PerColumnWeights>> q_;  // [layer][kind]
};

/**
 * K-Quant-like per-group W8A8 (group 32): per-group weight scales along K
 * and dynamic per-(row, group) activation scales, with the float sub-tensor
 * reduction of Figure 3(b). Accurate under outliers, NPU-hostile.
 */
class KQuantExecutor : public LinearExecutor
{
  public:
    KQuantExecutor(const ModelWeights& weights, int group_size = 32);

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    /** Stacked: per-row dynamics only, so one kernel call is exact. */
    Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                        const BatchSegments& segments) override;
    std::string Name() const override { return "K-Quant"; }

    int group_size() const { return group_size_; }

  private:
    const ModelWeights& weights_;
    int group_size_;
    std::vector<std::vector<PerGroupWeights>> q_;  // [layer][kind]
};

/**
 * AWQ-like: weight-only per-group quantization with activation-aware
 * per-channel weight scaling (salient channels protected by s_k derived
 * from calibration mean |x|). Activations stay float (Table 4).
 */
class AwqExecutor : public LinearExecutor
{
  public:
    AwqExecutor(const ModelWeights& weights, const CalibrationData& calib,
                int group_size = 32, double alpha = 0.5);

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    /** Stacked: per-row dynamics only, so one kernel call is exact. */
    Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                        const BatchSegments& segments) override;
    std::string Name() const override { return "AWQ"; }

  private:
    const ModelWeights& weights_;
    /** Effective dequantized weights after scale/quant/unscale. */
    std::vector<std::vector<Tensor>> w_eff_;  // [layer][kind]
};

/**
 * SmoothQuant-like: offline smoothing s_k = max|x_k|^a / max|w_k|^(1-a)
 * migrates activation outliers into the weights, then *static* per-tensor
 * activation scales (from calibration) + per-column int8 weights.
 * Per-tensor and NPU-friendly, but accuracy suffers (Table 6).
 */
class SmoothQuantExecutor : public LinearExecutor
{
  public:
    SmoothQuantExecutor(const ModelWeights& weights,
                        const CalibrationData& calib, double alpha = 0.5);

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    /** Stacked: per-row dynamics only, so one kernel call is exact. */
    Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                        const BatchSegments& segments) override;
    std::string Name() const override { return "SmoothQuant"; }

  private:
    struct SmoothedLinear {
        std::vector<float> inv_smooth;  ///< 1/s_k applied to activations
        PerColumnWeights weights;       ///< quantized smoothed weights
        float static_act_scale = 1.0f;  ///< offline-profiled per-tensor scale
    };
    std::vector<std::vector<SmoothedLinear>> q_;  // [layer][kind]
};

/**
 * LLM.Int8()-like mixed-precision decomposition: activation channels whose
 * calibrated absmax exceeds a threshold run in float; the rest use
 * vector-wise (per-row activation x per-column weight) int8 matmul.
 */
class LlmInt8Executor : public LinearExecutor
{
  public:
    LlmInt8Executor(const ModelWeights& weights, const CalibrationData& calib,
                    double outlier_threshold = 6.0);

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    /** Stacked: per-row dynamics only, so one kernel call is exact. */
    Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                        const BatchSegments& segments) override;
    std::string Name() const override { return "LLM.Int8()"; }

    /** Outlier channel count of one linear (for memory/latency analysis). */
    size_t NumOutlierChannels(int layer, LinearKind kind) const;

  private:
    struct DecomposedLinear {
        std::vector<int> outlier_channels;  ///< fp path (ascending)
        std::vector<int> normal_channels;   ///< int8 path (ascending)
        Tensor w_outlier;                   ///< f32 [|outlier| x N]
        Tensor w_normal_q;                  ///< int8 [|normal| x N]
        std::vector<float> w_scales;        ///< per column
    };
    const ModelWeights& weights_;
    std::vector<std::vector<DecomposedLinear>> q_;  // [layer][kind]
};

}  // namespace llmnpu

#endif  // LLMNPU_QUANT_BASELINES_H
