/**
 * @file
 * Element types supported by the llmnpu tensor library.
 */
#ifndef LLMNPU_TENSOR_DTYPE_H
#define LLMNPU_TENSOR_DTYPE_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/util/check.h"

namespace llmnpu {

/**
 * Element type of a Tensor.
 *
 * kF32 stands in for both FP32 and FP16 numerics: the paper's "float"
 * operators (Attention, LayerNorm) are accuracy-preserving either way, and
 * the timing plane prices FP16 separately from the numeric plane.
 */
enum class DType : uint8_t {
    kF32,  ///< 32-bit float (also models FP16 numerics).
    kI8,   ///< 8-bit signed integer (quantized weights/activations).
    kI32,  ///< 32-bit accumulator for W8A8 matmul.
};

/** Size in bytes of one element. */
inline size_t
DTypeSize(DType t)
{
    switch (t) {
      case DType::kF32: return 4;
      case DType::kI8: return 1;
      case DType::kI32: return 4;
    }
    LLMNPU_CHECK(false);
    return 0;
}

/** Human-readable name. */
inline std::string
DTypeName(DType t)
{
    switch (t) {
      case DType::kF32: return "f32";
      case DType::kI8: return "i8";
      case DType::kI32: return "i32";
    }
    return "?";
}

}  // namespace llmnpu

#endif  // LLMNPU_TENSOR_DTYPE_H
