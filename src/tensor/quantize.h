/**
 * @file
 * Tensor-level quantization primitives: symmetric per-tensor and per-group
 * INT8 quantization (Figure 3 of the paper).
 *
 * The algorithm-level quantizers (K-Quant-like, AWQ-like, SmoothQuant-like,
 * LLM.Int8()-like, llm.npu's enhanced per-tensor scheme) in src/quant are
 * built on these primitives.
 */
#ifndef LLMNPU_TENSOR_QUANTIZE_H
#define LLMNPU_TENSOR_QUANTIZE_H

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace llmnpu {

/** Symmetric quantization parameters (zero point fixed at 0). */
struct QuantParams {
    float scale = 1.0f;  ///< real_value ~= scale * int8_value
};

/** Largest absolute value in an f32 tensor. */
float AbsMax(const Tensor& x);

/** Max-min symmetric scale so that absmax maps to 127 (paper ref [47]). */
QuantParams ComputeSymmetricScale(const Tensor& x);

/**
 * Quantizes f32 -> int8 with round-to-nearest and clamping to [-127, 127].
 *
 * Values beyond the representable range saturate; llm.npu's shadow outlier
 * execution (Equation 1) computes exactly the part lost to this clamp.
 */
Tensor QuantizeSymmetric(const Tensor& x, const QuantParams& params);

/** Dequantizes int8 -> f32 with the given scale. */
Tensor Dequantize(const Tensor& q, const QuantParams& params);

/** Weights quantized with one symmetric scale per output column. */
struct PerColumnWeights {
    Tensor q;                   ///< int8 [K x N]
    std::vector<float> scales;  ///< [N]
};

/**
 * Per-output-channel symmetric quantization of a [K x N] weight matrix.
 * The NPU-friendly weight form: dequantization is a post-accumulation
 * per-column multiply (QNN supports this natively).
 */
PerColumnWeights QuantizePerColumn(const Tensor& w);

/** Dequantizes per-column weights back to f32 (for error analysis). */
Tensor DequantizePerColumn(const PerColumnWeights& w);

/**
 * Per-group quantization of a [K x N] weight matrix along the K dimension
 * (Figure 3(b)): each (group g, column n) block of `group_size` elements has
 * its own scale.
 */
struct PerGroupWeights {
    Tensor q;                   ///< int8 [K x N]
    std::vector<float> scales;  ///< [num_groups * N], scale of (g, n)
    int group_size = 0;
    int num_groups = 0;

    float GroupScale(int g, int64_t n) const
    {
        return scales[static_cast<size_t>(g) * static_cast<size_t>(q.Cols()) +
                      static_cast<size_t>(n)];
    }
};

/** Quantizes weights [K x N] per group along K. group_size must divide K. */
PerGroupWeights QuantizePerGroup(const Tensor& w, int group_size);

/** Dequantizes per-group weights back to f32 (for error analysis). */
Tensor DequantizePerGroup(const PerGroupWeights& w);

}  // namespace llmnpu

#endif  // LLMNPU_TENSOR_QUANTIZE_H
