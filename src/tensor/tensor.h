/**
 * @file
 * Dense row-major tensor with explicit element type.
 *
 * This is the numeric substrate for the whole repository: the reference
 * transformer, every quantization algorithm, and llm.npu's shadow outlier
 * execution all compute on these tensors, so accuracy results are real
 * computations rather than estimates.
 */
#ifndef LLMNPU_TENSOR_TENSOR_H
#define LLMNPU_TENSOR_TENSOR_H

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "src/tensor/dtype.h"
#include "src/util/check.h"

namespace llmnpu {

/**
 * A dense, row-major, owning tensor.
 *
 * Copyable (deep copy) and movable. Rank is arbitrary but most of the code
 * uses rank-2 [rows x cols] matrices; convenience accessors assume that.
 */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no elements). */
    Tensor() : dtype_(DType::kF32) {}

    /** Uninitialized tensor of the given shape. */
    Tensor(std::vector<int64_t> shape, DType dtype)
        : shape_(std::move(shape)), dtype_(dtype)
    {
        for (int64_t d : shape_) LLMNPU_CHECK_GE(d, 0);
        data_.resize(static_cast<size_t>(NumElements()) * DTypeSize(dtype_));
    }

    /** Zero-initialized tensor. */
    static Tensor
    Zeros(std::vector<int64_t> shape, DType dtype = DType::kF32)
    {
        Tensor t(std::move(shape), dtype);
        if (!t.data_.empty()) {  // memset(nullptr, 0, 0) is UB
            std::memset(t.data_.data(), 0, t.data_.size());
        }
        return t;
    }

    /** Constant-filled f32 tensor. */
    static Tensor
    Full(std::vector<int64_t> shape, float value)
    {
        Tensor t(std::move(shape), DType::kF32);
        float* p = t.Data<float>();
        for (int64_t i = 0; i < t.NumElements(); ++i) p[i] = value;
        return t;
    }

    /** f32 tensor from an explicit value list (row-major). */
    static Tensor
    FromValues(std::vector<int64_t> shape, const std::vector<float>& values)
    {
        Tensor t(std::move(shape), DType::kF32);
        LLMNPU_CHECK_EQ(static_cast<int64_t>(values.size()), t.NumElements());
        if (!values.empty()) {  // memcpy from nullptr is UB even for n=0
            std::memcpy(t.Data<float>(), values.data(),
                        values.size() * sizeof(float));
        }
        return t;
    }

    const std::vector<int64_t>& shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    int Rank() const { return static_cast<int>(shape_.size()); }

    /** Total number of elements. */
    int64_t
    NumElements() const
    {
        return std::accumulate(shape_.begin(), shape_.end(),
                               static_cast<int64_t>(1),
                               std::multiplies<int64_t>());
    }

    /** Total storage in bytes. */
    size_t SizeBytes() const { return data_.size(); }

    /** Dimension i (supports negative indexing from the back). */
    int64_t
    Dim(int i) const
    {
        if (i < 0) i += Rank();
        LLMNPU_CHECK_GE(i, 0);
        LLMNPU_CHECK_LT(i, Rank());
        return shape_[static_cast<size_t>(i)];
    }

    /** Rows of a rank-2 tensor. */
    int64_t
    Rows() const
    {
        LLMNPU_CHECK_EQ(Rank(), 2);
        return shape_[0];
    }

    /** Cols of a rank-2 tensor. */
    int64_t
    Cols() const
    {
        LLMNPU_CHECK_EQ(Rank(), 2);
        return shape_[1];
    }

    /** Typed mutable pointer; the template type must match dtype. */
    template <typename T>
    T*
    Data()
    {
        CheckType<T>();
        return reinterpret_cast<T*>(data_.data());
    }

    /** Typed const pointer; the template type must match dtype. */
    template <typename T>
    const T*
    Data() const
    {
        CheckType<T>();
        return reinterpret_cast<const T*>(data_.data());
    }

    /** Element access for rank-2 f32 tensors. */
    float&
    At(int64_t r, int64_t c)
    {
        LLMNPU_CHECK_EQ(Rank(), 2);
        BoundsCheck(r, c);
        return Data<float>()[r * shape_[1] + c];
    }

    float
    At(int64_t r, int64_t c) const
    {
        LLMNPU_CHECK_EQ(Rank(), 2);
        BoundsCheck(r, c);
        return Data<float>()[r * shape_[1] + c];
    }

    /** Copies rows [start, start+n) of a rank-2 tensor. */
    Tensor
    CopyRows(int64_t start, int64_t n) const
    {
        LLMNPU_CHECK_EQ(Rank(), 2);
        LLMNPU_CHECK_GE(start, 0);
        LLMNPU_CHECK_LE(start + n, Rows());
        Tensor out({n, Cols()}, dtype_);
        const size_t row_bytes = static_cast<size_t>(Cols()) *
                                 DTypeSize(dtype_);
        if (n > 0 && row_bytes > 0) {
            std::memcpy(out.data_.data(),
                        data_.data() + static_cast<size_t>(start) * row_bytes,
                        static_cast<size_t>(n) * row_bytes);
        }
        return out;
    }

    /** Overwrites rows [start, start + src.Rows()) with the rows of `src`
     *  (the scatter counterpart of CopyRows, used to write one sequence's
     *  segment back into a stacked batch tensor). */
    void
    PasteRows(const Tensor& src, int64_t start)
    {
        LLMNPU_CHECK_EQ(Rank(), 2);
        LLMNPU_CHECK_EQ(src.Rank(), 2);
        LLMNPU_CHECK_EQ(src.Cols(), Cols());
        LLMNPU_CHECK(src.dtype() == dtype_);
        LLMNPU_CHECK_GE(start, 0);
        LLMNPU_CHECK_LE(start + src.Rows(), Rows());
        const size_t row_bytes = static_cast<size_t>(Cols()) *
                                 DTypeSize(dtype_);
        if (src.Rows() > 0 && row_bytes > 0) {
            std::memcpy(data_.data() +
                            static_cast<size_t>(start) * row_bytes,
                        src.data_.data(),
                        static_cast<size_t>(src.Rows()) * row_bytes);
        }
    }

    /** Returns a reshaped deep-copy sharing no storage. */
    Tensor
    Reshape(std::vector<int64_t> new_shape) const
    {
        Tensor out(std::move(new_shape), dtype_);
        LLMNPU_CHECK_EQ(out.NumElements(), NumElements());
        if (!data_.empty()) {
            std::memcpy(out.data_.data(), data_.data(), data_.size());
        }
        return out;
    }

    /** True when shapes, dtypes and bytes are identical. */
    bool
    BitEquals(const Tensor& other) const
    {
        return shape_ == other.shape_ && dtype_ == other.dtype_ &&
               data_ == other.data_;
    }

  private:
    template <typename T>
    void
    CheckType() const
    {
        if constexpr (std::is_same_v<T, float>) {
            LLMNPU_CHECK(dtype_ == DType::kF32);
        } else if constexpr (std::is_same_v<T, int8_t>) {
            LLMNPU_CHECK(dtype_ == DType::kI8);
        } else if constexpr (std::is_same_v<T, int32_t>) {
            LLMNPU_CHECK(dtype_ == DType::kI32);
        } else {
            static_assert(sizeof(T) == 0, "unsupported tensor element type");
        }
    }

    void
    BoundsCheck(int64_t r, int64_t c) const
    {
        LLMNPU_CHECK_GE(r, 0);
        LLMNPU_CHECK_LT(r, shape_[0]);
        LLMNPU_CHECK_GE(c, 0);
        LLMNPU_CHECK_LT(c, shape_[1]);
    }

    std::vector<int64_t> shape_;
    DType dtype_;
    std::vector<uint8_t> data_;
};

/** Max absolute difference between two equally-shaped f32 tensors. */
inline double
MaxAbsDiff(const Tensor& a, const Tensor& b)
{
    LLMNPU_CHECK(a.shape() == b.shape());
    const float* pa = a.Data<float>();
    const float* pb = b.Data<float>();
    double m = 0.0;
    for (int64_t i = 0; i < a.NumElements(); ++i) {
        const double d = std::abs(static_cast<double>(pa[i]) - pb[i]);
        if (d > m) m = d;
    }
    return m;
}

/** Mean squared error between two equally-shaped f32 tensors. */
inline double
MeanSquaredError(const Tensor& a, const Tensor& b)
{
    LLMNPU_CHECK(a.shape() == b.shape());
    const float* pa = a.Data<float>();
    const float* pb = b.Data<float>();
    double acc = 0.0;
    for (int64_t i = 0; i < a.NumElements(); ++i) {
        const double d = static_cast<double>(pa[i]) - pb[i];
        acc += d * d;
    }
    return a.NumElements() ? acc / static_cast<double>(a.NumElements()) : 0.0;
}

}  // namespace llmnpu

#endif  // LLMNPU_TENSOR_TENSOR_H
