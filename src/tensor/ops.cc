#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace llmnpu {

void
SoftmaxRowsInPlace(Tensor& x)
{
    LLMNPU_CHECK_EQ(x.Rank(), 2);
    const int64_t rows = x.Rows(), cols = x.Cols();
    float* p = x.Data<float>();
    for (int64_t r = 0; r < rows; ++r) {
        float* row = p + r * cols;
        float mx = row[0];
        for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
        double sum = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
            row[c] = std::exp(row[c] - mx);
            sum += row[c];
        }
        const float inv = static_cast<float>(1.0 / sum);
        for (int64_t c = 0; c < cols; ++c) row[c] *= inv;
    }
}

Tensor
LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta, float eps)
{
    LLMNPU_CHECK_EQ(x.Rank(), 2);
    const int64_t rows = x.Rows(), cols = x.Cols();
    LLMNPU_CHECK_EQ(gamma.NumElements(), cols);
    LLMNPU_CHECK_EQ(beta.NumElements(), cols);
    Tensor out({rows, cols}, DType::kF32);
    const float* in = x.Data<float>();
    const float* g = gamma.Data<float>();
    const float* b = beta.Data<float>();
    float* o = out.Data<float>();
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = in + r * cols;
        double mean = 0.0;
        for (int64_t c = 0; c < cols; ++c) mean += row[c];
        mean /= static_cast<double>(cols);
        double var = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
            const double d = row[c] - mean;
            var += d * d;
        }
        var /= static_cast<double>(cols);
        const float inv = static_cast<float>(1.0 / std::sqrt(var + eps));
        for (int64_t c = 0; c < cols; ++c) {
            o[r * cols + c] =
                (row[c] - static_cast<float>(mean)) * inv * g[c] + b[c];
        }
    }
    return out;
}

Tensor
RMSNorm(const Tensor& x, const Tensor& gamma, float eps)
{
    LLMNPU_CHECK_EQ(x.Rank(), 2);
    const int64_t rows = x.Rows(), cols = x.Cols();
    LLMNPU_CHECK_EQ(gamma.NumElements(), cols);
    Tensor out({rows, cols}, DType::kF32);
    const float* in = x.Data<float>();
    const float* g = gamma.Data<float>();
    float* o = out.Data<float>();
    for (int64_t r = 0; r < rows; ++r) {
        const float* row = in + r * cols;
        double ms = 0.0;
        for (int64_t c = 0; c < cols; ++c) {
            ms += static_cast<double>(row[c]) * row[c];
        }
        ms /= static_cast<double>(cols);
        const float inv = static_cast<float>(1.0 / std::sqrt(ms + eps));
        for (int64_t c = 0; c < cols; ++c) {
            o[r * cols + c] = row[c] * inv * g[c];
        }
    }
    return out;
}

void
SiluInPlace(Tensor& x)
{
    float* p = x.Data<float>();
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        p[i] = p[i] / (1.0f + std::exp(-p[i]));
    }
}

void
GeluInPlace(Tensor& x)
{
    constexpr float kSqrt2OverPi = 0.7978845608f;
    float* p = x.Data<float>();
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        const float v = p[i];
        p[i] = 0.5f * v *
               (1.0f + std::tanh(kSqrt2OverPi * (v + 0.044715f * v * v * v)));
    }
}

Tensor
Add(const Tensor& a, const Tensor& b)
{
    LLMNPU_CHECK(a.shape() == b.shape());
    Tensor out(a.shape(), DType::kF32);
    const float* pa = a.Data<float>();
    const float* pb = b.Data<float>();
    float* po = out.Data<float>();
    for (int64_t i = 0; i < a.NumElements(); ++i) po[i] = pa[i] + pb[i];
    return out;
}

void
AddInPlace(Tensor& a, const Tensor& b)
{
    LLMNPU_CHECK(a.shape() == b.shape());
    float* pa = a.Data<float>();
    const float* pb = b.Data<float>();
    for (int64_t i = 0; i < a.NumElements(); ++i) pa[i] += pb[i];
}

Tensor
Mul(const Tensor& a, const Tensor& b)
{
    LLMNPU_CHECK(a.shape() == b.shape());
    Tensor out(a.shape(), DType::kF32);
    const float* pa = a.Data<float>();
    const float* pb = b.Data<float>();
    float* po = out.Data<float>();
    for (int64_t i = 0; i < a.NumElements(); ++i) po[i] = pa[i] * pb[i];
    return out;
}

void
ApplyRope(Tensor& x, int num_heads, int head_dim, int64_t pos_offset,
          float theta)
{
    ApplyRopeRows(x, 0, x.Rows(), num_heads, head_dim, pos_offset, theta);
}

void
ApplyRopeRows(Tensor& x, int64_t row_begin, int64_t row_count, int num_heads,
              int head_dim, int64_t pos_offset, float theta)
{
    LLMNPU_CHECK_EQ(x.Rank(), 2);
    LLMNPU_CHECK_EQ(x.Cols(), static_cast<int64_t>(num_heads) * head_dim);
    LLMNPU_CHECK_EQ(head_dim % 2, 0);
    LLMNPU_CHECK_GE(row_begin, 0);
    LLMNPU_CHECK_LE(row_begin + row_count, x.Rows());
    const int half = head_dim / 2;
    float* p = x.Data<float>() + row_begin * x.Cols();
    const int64_t seq = row_count;
    for (int64_t s = 0; s < seq; ++s) {
        const double pos = static_cast<double>(pos_offset + s);
        for (int h = 0; h < num_heads; ++h) {
            float* head = p + s * x.Cols() + static_cast<int64_t>(h) * head_dim;
            for (int d = 0; d < half; ++d) {
                const double freq =
                    std::pow(static_cast<double>(theta),
                             -2.0 * static_cast<double>(d) / head_dim);
                const double angle = pos * freq;
                const float cos_a = static_cast<float>(std::cos(angle));
                const float sin_a = static_cast<float>(std::sin(angle));
                const float x0 = head[d];
                const float x1 = head[d + half];
                head[d] = x0 * cos_a - x1 * sin_a;
                head[d + half] = x0 * sin_a + x1 * cos_a;
            }
        }
    }
}

Tensor
CausalAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                int num_heads, int num_kv_heads, int64_t q_pos_offset)
{
    LLMNPU_CHECK_EQ(q.Rank(), 2);
    LLMNPU_CHECK_EQ(k.Rank(), 2);
    LLMNPU_CHECK(k.shape() == v.shape());
    LLMNPU_CHECK_EQ(q.Cols() % num_heads, 0);
    LLMNPU_CHECK_EQ(k.Cols() % num_kv_heads, 0);
    LLMNPU_CHECK_EQ(num_heads % num_kv_heads, 0);
    const int head_dim = static_cast<int>(q.Cols()) / num_heads;
    LLMNPU_CHECK_EQ(static_cast<int>(k.Cols()) / num_kv_heads, head_dim);

    const int64_t q_len = q.Rows();
    const int64_t kv_len = k.Rows();
    LLMNPU_CHECK_GE(kv_len, q_pos_offset + q_len);
    const int heads_per_kv = num_heads / num_kv_heads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));

    Tensor out = Tensor::Zeros({q_len, q.Cols()});
    const float* pq = q.Data<float>();
    const float* pk = k.Data<float>();
    const float* pv = v.Data<float>();
    float* po = out.Data<float>();

    std::vector<float> scores;
    for (int h = 0; h < num_heads; ++h) {
        const int kv_h = h / heads_per_kv;
        const int64_t q_off = static_cast<int64_t>(h) * head_dim;
        const int64_t kv_off = static_cast<int64_t>(kv_h) * head_dim;
        for (int64_t i = 0; i < q_len; ++i) {
            const int64_t visible = q_pos_offset + i + 1;  // causal mask
            scores.assign(static_cast<size_t>(visible), 0.0f);
            const float* qrow = pq + i * q.Cols() + q_off;
            float mx = -1e30f;
            for (int64_t j = 0; j < visible; ++j) {
                const float* krow = pk + j * k.Cols() + kv_off;
                float dot = 0.0f;
                for (int d = 0; d < head_dim; ++d) dot += qrow[d] * krow[d];
                scores[static_cast<size_t>(j)] = dot * scale;
                mx = std::max(mx, scores[static_cast<size_t>(j)]);
            }
            double sum = 0.0;
            for (int64_t j = 0; j < visible; ++j) {
                scores[static_cast<size_t>(j)] =
                    std::exp(scores[static_cast<size_t>(j)] - mx);
                sum += scores[static_cast<size_t>(j)];
            }
            const float inv = static_cast<float>(1.0 / sum);
            float* orow = po + i * q.Cols() + q_off;
            for (int64_t j = 0; j < visible; ++j) {
                const float w = scores[static_cast<size_t>(j)] * inv;
                const float* vrow = pv + j * v.Cols() + kv_off;
                for (int d = 0; d < head_dim; ++d) orow[d] += w * vrow[d];
            }
        }
    }
    return out;
}

}  // namespace llmnpu
