/**
 * @file
 * Reference (naive) matmul kernels.
 *
 * These triple-loop implementations define the kernel semantics and act as
 * the equivalence oracle for the tiled/threaded kernels in kernels.cc, and
 * as the baseline bench_kernels measures speedups against. They are built
 * with the project's portable default flags on purpose — the optimized
 * kernels may be compiled with target SIMD flags (see CMakeLists.txt).
 */
#include "src/tensor/matmul.h"

#include <algorithm>
#include <cmath>

namespace llmnpu {

Tensor
MatMulF32Naive(const Tensor& a, const Tensor& b)
{
    LLMNPU_CHECK(a.dtype() == DType::kF32);
    LLMNPU_CHECK(b.dtype() == DType::kF32);
    LLMNPU_CHECK_EQ(a.Cols(), b.Rows());
    const int64_t m = a.Rows(), k = a.Cols(), n = b.Cols();
    Tensor c = Tensor::Zeros({m, n});
    const float* pa = a.Data<float>();
    const float* pb = b.Data<float>();
    float* pc = c.Data<float>();
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
            const float av = pa[i * k + kk];
            if (av == 0.0f) continue;
            const float* brow = pb + kk * n;
            float* crow = pc + i * n;
            for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
    }
    return c;
}

namespace {

/** Shared INT32-accumulation core for the naive W8A8 kernels. */
void
Int8AccumulateRow(const int8_t* a_row, const int8_t* w, int64_t k, int64_t n,
                  int32_t* acc)
{
    std::fill(acc, acc + n, 0);
    for (int64_t kk = 0; kk < k; ++kk) {
        const int32_t av = a_row[kk];
        if (av == 0) continue;
        const int8_t* wrow = w + kk * n;
        for (int64_t j = 0; j < n; ++j) acc[j] += av * wrow[j];
    }
}

}  // namespace

Tensor
MatMulW8A8PerTensorNaive(const Tensor& a_q, float a_scale, const Tensor& w_q,
                         const std::vector<float>& w_scales)
{
    LLMNPU_CHECK(a_q.dtype() == DType::kI8);
    LLMNPU_CHECK(w_q.dtype() == DType::kI8);
    LLMNPU_CHECK_EQ(a_q.Cols(), w_q.Rows());
    const int64_t m = a_q.Rows(), k = a_q.Cols(), n = w_q.Cols();
    LLMNPU_CHECK(w_scales.size() == 1 ||
                 w_scales.size() == static_cast<size_t>(n));
    Tensor c = Tensor::Zeros({m, n});
    const int8_t* pa = a_q.Data<int8_t>();
    const int8_t* pw = w_q.Data<int8_t>();
    float* pc = c.Data<float>();

    // Uniform-vs-per-column scale choice hoisted out of the hot loop; both
    // arms keep the exact float(acc) * a_scale * ws expression so the two
    // cases (and the tiled kernel) stay bitwise comparable.
    const bool uniform = w_scales.size() == 1;
    std::vector<int32_t> acc(static_cast<size_t>(n));
    for (int64_t i = 0; i < m; ++i) {
        Int8AccumulateRow(pa + i * k, pw, k, n, acc.data());
        if (uniform) {
            const float ws = w_scales[0];
            for (int64_t j = 0; j < n; ++j) {
                pc[i * n + j] =
                    static_cast<float>(acc[static_cast<size_t>(j)]) *
                    a_scale * ws;
            }
        } else {
            for (int64_t j = 0; j < n; ++j) {
                pc[i * n + j] =
                    static_cast<float>(acc[static_cast<size_t>(j)]) *
                    a_scale * w_scales[static_cast<size_t>(j)];
            }
        }
    }
    return c;
}

Tensor
MatMulW8A8RowColNaive(const Tensor& a_q, const std::vector<float>& a_scales,
                      const Tensor& w_q, const std::vector<float>& w_scales)
{
    LLMNPU_CHECK(a_q.dtype() == DType::kI8);
    LLMNPU_CHECK(w_q.dtype() == DType::kI8);
    LLMNPU_CHECK_EQ(a_q.Cols(), w_q.Rows());
    const int64_t m = a_q.Rows(), k = a_q.Cols(), n = w_q.Cols();
    LLMNPU_CHECK_EQ(a_scales.size(), static_cast<size_t>(m));
    LLMNPU_CHECK_EQ(w_scales.size(), static_cast<size_t>(n));
    Tensor c = Tensor::Zeros({m, n});
    const int8_t* pa = a_q.Data<int8_t>();
    const int8_t* pw = w_q.Data<int8_t>();
    float* pc = c.Data<float>();

    std::vector<int32_t> acc(static_cast<size_t>(n));
    for (int64_t i = 0; i < m; ++i) {
        Int8AccumulateRow(pa + i * k, pw, k, n, acc.data());
        for (int64_t j = 0; j < n; ++j) {
            pc[i * n + j] = static_cast<float>(acc[static_cast<size_t>(j)]) *
                            a_scales[static_cast<size_t>(i)] *
                            w_scales[static_cast<size_t>(j)];
        }
    }
    return c;
}

Tensor
MatMulPerGroupNaive(const Tensor& a, const PerGroupWeights& w)
{
    LLMNPU_CHECK(a.dtype() == DType::kF32);
    const int64_t m = a.Rows(), k = a.Cols(), n = w.q.Cols();
    LLMNPU_CHECK_EQ(k, w.q.Rows());
    const int g_size = w.group_size;
    const int groups = w.num_groups;

    Tensor c = Tensor::Zeros({m, n});
    const float* pa = a.Data<float>();
    const int8_t* pw = w.q.Data<int8_t>();
    float* pc = c.Data<float>();

    std::vector<int8_t> a_q(static_cast<size_t>(g_size));
    std::vector<int32_t> acc(static_cast<size_t>(n));
    for (int64_t i = 0; i < m; ++i) {
        for (int g = 0; g < groups; ++g) {
            const int64_t k0 = static_cast<int64_t>(g) * g_size;
            // Quantize this activation group (per row, per group scale).
            float absmax = 0.0f;
            for (int t = 0; t < g_size; ++t) {
                absmax = std::max(absmax, std::abs(pa[i * k + k0 + t]));
            }
            const float a_scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
            const float inv = 1.0f / a_scale;
            for (int t = 0; t < g_size; ++t) {
                a_q[static_cast<size_t>(t)] = static_cast<int8_t>(std::clamp(
                    std::nearbyint(pa[i * k + k0 + t] * inv), -127.0f,
                    127.0f));
            }
            // Sub-tensor INT32 matmul for this group...
            std::fill(acc.begin(), acc.end(), 0);
            for (int t = 0; t < g_size; ++t) {
                const int32_t av = a_q[static_cast<size_t>(t)];
                if (av == 0) continue;
                const int8_t* wrow = pw + (k0 + t) * n;
                for (int64_t j = 0; j < n; ++j) {
                    acc[static_cast<size_t>(j)] += av * wrow[j];
                }
            }
            // ...followed by the float reduction across groups.
            for (int64_t j = 0; j < n; ++j) {
                pc[i * n + j] += static_cast<float>(acc[static_cast<size_t>(j)]) *
                                 a_scale * w.GroupScale(g, j);
            }
        }
    }
    return c;
}

}  // namespace llmnpu
