/**
 * @file
 * Tiled, multi-threaded numeric-plane kernels (the public MatMul* entry
 * points declared in matmul.h).
 *
 * Structure, for every kernel:
 *
 *  - Weights are packed panel-major (PackWeights*): kPanelWidth output
 *    columns per panel with the K dimension contiguous, so the inner loop
 *    streams one cache line of B per K step regardless of N.
 *  - A register-tiled micro-kernel computes a kMR x kPanelWidth block of C
 *    with all accumulators in registers: unlike the naive saxpy form there
 *    are no loads/stores of C inside the K loop.
 *  - Row blocks are distributed over the shared ThreadPool; each output row
 *    is computed entirely by one thread with a fixed K-ascending
 *    accumulation order, so results do not depend on the thread count
 *    (bitwise for the INT8 kernels).
 *
 * This file may be compiled with target SIMD flags (see LLMNPU_KERNEL_SIMD
 * in CMakeLists.txt); the reference kernels in matmul.cc keep the portable
 * default flags and serve as the equivalence oracle.
 */
#include <algorithm>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/obs/trace.h"
#include "src/tensor/matmul.h"
#include "src/util/threadpool.h"

namespace llmnpu {

namespace {

/** Rows per micro-kernel invocation. 4 x kPanelWidth f32 accumulators fill
 *  eight 256-bit registers — the sweet spot for FMA auto-vectorization. */
constexpr int kMR = 4;

#if defined(__GNUC__) || defined(__clang__)
#define LLMNPU_VECTOR_EXT 1
/**
 * Half a packed panel row as one vector value (GCC/Clang vector
 * extensions, 8 lanes = one 256-bit register on AVX2). Each micro-kernel
 * handles a panel row as a lo/hi pair, so a kMR-row block keeps its
 * 2*kMR accumulators in registers for the whole K loop — the plain
 * auto-vectorizer instead SLP-vectorizes at 128 bits and spills every
 * accumulator to the stack (measured ~5x slower).
 *
 * aligned attribute: panels live in std::vector storage with no 32-byte
 * guarantee; loads/stores must not assume vector alignment. may_alias:
 * the vector loads/stores reinterpret float storage, which would
 * otherwise be undefined under strict aliasing.
 */
typedef float VecF32x8
    __attribute__((vector_size(32), aligned(4), may_alias));
static_assert(2 * sizeof(VecF32x8) == kPanelWidth * sizeof(float),
              "two vector halves must span the panel width");
#endif

/** Below this many multiply-accumulates, threading overhead dominates. */
constexpr int64_t kParallelFlopCutoff = 64 * 1024;

/** Splits rows [0, m) over the pool when the matmul is big enough. */
template <typename Fn>
void
RowParallel(int64_t m, int64_t work_per_row, const Fn& fn)
{
    if (m <= 0) return;
    if (m * work_per_row < kParallelFlopCutoff) {
        fn(static_cast<int64_t>(0), m);
        return;
    }
    ThreadPool::Global().ParallelFor(m, 1, fn);
}

int64_t
NumPanels(int64_t n)
{
    return (n + kPanelWidth - 1) / kPanelWidth;
}

/**
 * MR x kPanelWidth f32 micro-kernel over one packed panel.
 *
 * Accumulators live in registers for the whole K loop; the single store at
 * the end fully overwrites the C block (callers hand out uninitialized C).
 */
template <int MR>
void
MicroKernelF32(const float* __restrict a, int64_t lda,
               const float* __restrict bp, int64_t k, float* __restrict c,
               int64_t ldc, int64_t ncols)
{
#ifdef LLMNPU_VECTOR_EXT
    VecF32x8 acc_lo[MR] = {};
    VecF32x8 acc_hi[MR] = {};
    for (int64_t kk = 0; kk < k; ++kk) {
        const float* brow = bp + kk * kPanelWidth;
        const VecF32x8 b_lo = *reinterpret_cast<const VecF32x8*>(brow);
        const VecF32x8 b_hi = *reinterpret_cast<const VecF32x8*>(brow + 8);
        for (int r = 0; r < MR; ++r) {
            const float av = a[r * lda + kk];
            acc_lo[r] += av * b_lo;
            acc_hi[r] += av * b_hi;
        }
    }
    if (ncols == kPanelWidth) {
        for (int r = 0; r < MR; ++r) {
            *reinterpret_cast<VecF32x8*>(c + r * ldc) = acc_lo[r];
            *reinterpret_cast<VecF32x8*>(c + r * ldc + 8) = acc_hi[r];
        }
    } else {
        for (int r = 0; r < MR; ++r) {
            for (int64_t j = 0; j < ncols; ++j) {
                c[r * ldc + j] =
                    j < 8 ? acc_lo[r][j] : acc_hi[r][j - 8];
            }
        }
    }
#else
    float acc[MR][kPanelWidth] = {};
    for (int64_t kk = 0; kk < k; ++kk) {
        const float* __restrict brow = bp + kk * kPanelWidth;
        for (int r = 0; r < MR; ++r) {
            const float av = a[r * lda + kk];
            for (int j = 0; j < kPanelWidth; ++j) {
                acc[r][j] += av * brow[j];
            }
        }
    }
    for (int r = 0; r < MR; ++r) {
        for (int64_t j = 0; j < ncols; ++j) c[r * ldc + j] = acc[r][j];
    }
#endif
}

/** Runs the f32 micro-kernel over rows [r0, r1) of A for every panel. The
 *  panel loop is outermost so the packed panel stays cache-hot across row
 *  blocks. */
void
TiledF32Rows(const float* a, int64_t lda, const PackedWeightsF32& w,
             float* c, int64_t r0, int64_t r1)
{
    const int64_t k = w.k, n = w.n;
    const int64_t panels = NumPanels(n);
    for (int64_t p = 0; p < panels; ++p) {
        const float* bp = w.data.data() + p * k * kPanelWidth;
        const int64_t j0 = p * kPanelWidth;
        const int64_t ncols = std::min<int64_t>(kPanelWidth, n - j0);
        int64_t r = r0;
        for (; r + kMR <= r1; r += kMR) {
            MicroKernelF32<kMR>(a + r * lda, lda, bp, k, c + r * n + j0, n,
                                ncols);
        }
        switch (r1 - r) {
          case 3:
            MicroKernelF32<3>(a + r * lda, lda, bp, k, c + r * n + j0, n,
                              ncols);
            break;
          case 2:
            MicroKernelF32<2>(a + r * lda, lda, bp, k, c + r * n + j0, n,
                              ncols);
            break;
          case 1:
            MicroKernelF32<1>(a + r * lda, lda, bp, k, c + r * n + j0, n,
                              ncols);
            break;
          default: break;
        }
    }
}

/** MR x kPanelWidth INT8 micro-kernel: INT32 accumulation over one packed
 *  panel; the caller applies the dequantization scales. */
template <int MR>
void
MicroKernelI8(const int8_t* __restrict a, int64_t lda,
              const int8_t* __restrict bp, int64_t k0, int64_t k1,
              int32_t* __restrict acc /* [MR * kPanelWidth] */)
{
#if defined(__AVX2__)
    // Intrinsics rather than generic vectors: GCC scalarizes the
    // int8 -> int32 widening of 8-byte vector loads (one movsbl+pinsrd per
    // lane), where vpmovsxbd does the whole half-panel in one instruction.
    __m256i acc_lo[MR], acc_hi[MR];
    for (int r = 0; r < MR; ++r) {
        acc_lo[r] = _mm256_setzero_si256();
        acc_hi[r] = _mm256_setzero_si256();
    }
    for (int64_t kk = k0; kk < k1; ++kk) {
        const __m128i raw = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(bp + kk * kPanelWidth));
        const __m256i b_lo = _mm256_cvtepi8_epi32(raw);
        const __m256i b_hi =
            _mm256_cvtepi8_epi32(_mm_unpackhi_epi64(raw, raw));
        for (int r = 0; r < MR; ++r) {
            const __m256i av = _mm256_set1_epi32(a[r * lda + kk]);
            acc_lo[r] = _mm256_add_epi32(acc_lo[r],
                                         _mm256_mullo_epi32(av, b_lo));
            acc_hi[r] = _mm256_add_epi32(acc_hi[r],
                                         _mm256_mullo_epi32(av, b_hi));
        }
    }
    for (int r = 0; r < MR; ++r) {
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc + r * kPanelWidth), acc_lo[r]);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(acc + r * kPanelWidth + 8),
            acc_hi[r]);
    }
#else
    for (int i = 0; i < MR * kPanelWidth; ++i) acc[i] = 0;
    for (int64_t kk = k0; kk < k1; ++kk) {
        const int8_t* __restrict brow = bp + kk * kPanelWidth;
        for (int r = 0; r < MR; ++r) {
            const int32_t av = a[r * lda + kk];
            for (int j = 0; j < kPanelWidth; ++j) {
                acc[r * kPanelWidth + j] += av * brow[j];
            }
        }
    }
#endif
}

/**
 * Shared INT8 tiled driver for rows [r0, r1). `scale_for(row, col)` returns
 * the dequantization multiplier applied as float(acc) * scale_a(row) *
 * scale_w(col) — both per-tensor and vector-wise kernels route here.
 */
template <typename RowScale, typename ColScale>
void
TiledI8Rows(const int8_t* a, int64_t lda, const PackedWeightsI8& w, float* c,
            int64_t r0, int64_t r1, const RowScale& row_scale,
            const ColScale& col_scale)
{
    const int64_t k = w.k, n = w.n;
    const int64_t panels = NumPanels(n);
    int32_t acc[kMR * kPanelWidth];
    float wsc[kPanelWidth];
    for (int64_t p = 0; p < panels; ++p) {
        const int8_t* bp = w.data.data() + p * k * kPanelWidth;
        const int64_t j0 = p * kPanelWidth;
        const int64_t ncols = std::min<int64_t>(kPanelWidth, n - j0);
        for (int64_t j = 0; j < ncols; ++j) wsc[j] = col_scale(j0 + j);
        int64_t r = r0;
        auto store = [&](int64_t row_base, int rows) {
            for (int r_local = 0; r_local < rows; ++r_local) {
                const int64_t row = row_base + r_local;
                const float as = row_scale(row);
                float* crow = c + row * n + j0;
                const int32_t* arow = acc + r_local * kPanelWidth;
                for (int64_t j = 0; j < ncols; ++j) {
                    crow[j] = static_cast<float>(arow[j]) * as * wsc[j];
                }
            }
        };
        for (; r + kMR <= r1; r += kMR) {
            MicroKernelI8<kMR>(a + r * lda, lda, bp, 0, k, acc);
            store(r, kMR);
        }
        switch (r1 - r) {
          case 3: MicroKernelI8<3>(a + r * lda, lda, bp, 0, k, acc); break;
          case 2: MicroKernelI8<2>(a + r * lda, lda, bp, 0, k, acc); break;
          case 1: MicroKernelI8<1>(a + r * lda, lda, bp, 0, k, acc); break;
          default: break;
        }
        if (r < r1) store(r, static_cast<int>(r1 - r));
    }
}

/** Generic panel-major packer shared by the f32/int8 layouts. */
template <typename T>
std::vector<T>
PackPanels(const T* w, int64_t k, int64_t n)
{
    const int64_t panels = NumPanels(n);
    std::vector<T> data(static_cast<size_t>(panels * k * kPanelWidth),
                        T{0});
    for (int64_t p = 0; p < panels; ++p) {
        const int64_t j0 = p * kPanelWidth;
        const int64_t ncols = std::min<int64_t>(kPanelWidth, n - j0);
        T* dst = data.data() + p * k * kPanelWidth;
        for (int64_t kk = 0; kk < k; ++kk) {
            const T* src = w + kk * n + j0;
            for (int64_t j = 0; j < ncols; ++j) {
                dst[kk * kPanelWidth + j] = src[j];
            }
        }
    }
    return data;
}

}  // namespace

PackedWeightsF32
PackWeightsF32(const Tensor& w)
{
    LLMNPU_CHECK(w.dtype() == DType::kF32);
    PackedWeightsF32 packed;
    packed.k = w.Rows();
    packed.n = w.Cols();
    packed.data = PackPanels(w.Data<float>(), packed.k, packed.n);
    return packed;
}

PackedWeightsF32
PackWeightsF32Transposed(const Tensor& w)
{
    LLMNPU_CHECK(w.dtype() == DType::kF32);
    PackedWeightsF32 packed;
    packed.k = w.Cols();
    packed.n = w.Rows();
    const int64_t k = packed.k, n = packed.n;
    const int64_t panels = NumPanels(n);
    packed.data.assign(static_cast<size_t>(panels * k * kPanelWidth), 0.0f);
    const float* src = w.Data<float>();
    for (int64_t p = 0; p < panels; ++p) {
        const int64_t j0 = p * kPanelWidth;
        const int64_t ncols = std::min<int64_t>(kPanelWidth, n - j0);
        float* dst = packed.data.data() + p * k * kPanelWidth;
        // Column j of the implied [K x N] matrix is row (j0 + j) of w.
        for (int64_t j = 0; j < ncols; ++j) {
            const float* wrow = src + (j0 + j) * k;
            for (int64_t kk = 0; kk < k; ++kk) {
                dst[kk * kPanelWidth + j] = wrow[kk];
            }
        }
    }
    return packed;
}

PackedWeightsI8
PackWeightsI8(const Tensor& w_q, std::vector<float> scales)
{
    LLMNPU_CHECK(w_q.dtype() == DType::kI8);
    PackedWeightsI8 packed;
    packed.k = w_q.Rows();
    packed.n = w_q.Cols();
    LLMNPU_CHECK(scales.size() == 1 ||
                 scales.size() == static_cast<size_t>(packed.n));
    packed.data = PackPanels(w_q.Data<int8_t>(), packed.k, packed.n);
    packed.scales = std::move(scales);
    return packed;
}

Tensor
MatMulF32Packed(const Tensor& a, const PackedWeightsF32& w)
{
    LLMNPU_CHECK(a.dtype() == DType::kF32);
    LLMNPU_CHECK_EQ(a.Cols(), w.k);
    const int64_t m = a.Rows(), k = w.k, n = w.n;
    // Uninitialized: the micro-kernels overwrite every element.
    Tensor c({m, n}, DType::kF32);
    const float* pa = a.Data<float>();
    float* pc = c.Data<float>();
    LLMNPU_TRACE_SPAN_TILE("matmul.f32", "kernel", -1, -1, -1, "m",
                           static_cast<int>(m));
    RowParallel(m, k * n, [&](int64_t r0, int64_t r1) {
        LLMNPU_TRACE_SPAN_TILE("matmul.f32.rows", "kernel", -1, -1, -1,
                               "rows", static_cast<int>(r1 - r0));
        TiledF32Rows(pa, k, w, pc, r0, r1);
    });
    return c;
}

Tensor
MatMulF32(const Tensor& a, const Tensor& b)
{
    LLMNPU_CHECK(a.dtype() == DType::kF32);
    LLMNPU_CHECK(b.dtype() == DType::kF32);
    LLMNPU_CHECK_EQ(a.Cols(), b.Rows());
    const int64_t m = a.Rows(), k = a.Cols(), n = b.Cols();
    if (m == 1) {
        // Matvec: packing would cost as much as the multiply itself; a
        // branchless saxpy over the row-major weights streams B once.
        Tensor c = Tensor::Zeros({1, n});
        const float* pa = a.Data<float>();
        const float* pb = b.Data<float>();
        float* __restrict pc = c.Data<float>();
        for (int64_t kk = 0; kk < k; ++kk) {
            const float av = pa[kk];
            const float* __restrict brow = pb + kk * n;
            for (int64_t j = 0; j < n; ++j) pc[j] += av * brow[j];
        }
        return c;
    }
    return MatMulF32Packed(a, PackWeightsF32(b));
}

Tensor
MatMulW8A8PerTensorPacked(const Tensor& a_q, float a_scale,
                          const PackedWeightsI8& w)
{
    LLMNPU_CHECK(a_q.dtype() == DType::kI8);
    LLMNPU_CHECK_EQ(a_q.Cols(), w.k);
    const int64_t m = a_q.Rows(), k = w.k, n = w.n;
    Tensor c({m, n}, DType::kF32);
    const int8_t* pa = a_q.Data<int8_t>();
    float* pc = c.Data<float>();
    const bool uniform = w.scales.size() == 1;
    const float ws0 = w.scales.empty() ? 1.0f : w.scales[0];
    const float* ws = w.scales.data();
    LLMNPU_TRACE_SPAN_TILE("matmul.w8a8", "kernel", -1, -1, -1, "m",
                           static_cast<int>(m));
    RowParallel(m, k * n, [&](int64_t r0, int64_t r1) {
        LLMNPU_TRACE_SPAN_TILE("matmul.w8a8.rows", "kernel", -1, -1, -1,
                               "rows", static_cast<int>(r1 - r0));
        TiledI8Rows(
            pa, k, w, pc, r0, r1, [&](int64_t) { return a_scale; },
            [&](int64_t j) {
                return uniform ? ws0 : ws[static_cast<size_t>(j)];
            });
    });
    return c;
}

Tensor
MatMulW8A8PerTensor(const Tensor& a_q, float a_scale, const Tensor& w_q,
                    const std::vector<float>& w_scales)
{
    LLMNPU_CHECK(a_q.dtype() == DType::kI8);
    LLMNPU_CHECK(w_q.dtype() == DType::kI8);
    LLMNPU_CHECK_EQ(a_q.Cols(), w_q.Rows());
    LLMNPU_CHECK(w_scales.size() == 1 ||
                 w_scales.size() == static_cast<size_t>(w_q.Cols()));
    return MatMulW8A8PerTensorPacked(a_q, a_scale,
                                     PackWeightsI8(w_q, w_scales));
}

Tensor
MatMulW8A8RowCol(const Tensor& a_q, const std::vector<float>& a_scales,
                 const Tensor& w_q, const std::vector<float>& w_scales)
{
    LLMNPU_CHECK(a_q.dtype() == DType::kI8);
    LLMNPU_CHECK(w_q.dtype() == DType::kI8);
    LLMNPU_CHECK_EQ(a_q.Cols(), w_q.Rows());
    const int64_t m = a_q.Rows(), k = a_q.Cols(), n = w_q.Cols();
    LLMNPU_CHECK_EQ(a_scales.size(), static_cast<size_t>(m));
    LLMNPU_CHECK_EQ(w_scales.size(), static_cast<size_t>(n));
    const PackedWeightsI8 w = PackWeightsI8(w_q, w_scales);
    Tensor c({m, n}, DType::kF32);
    const int8_t* pa = a_q.Data<int8_t>();
    float* pc = c.Data<float>();
    const float* as = a_scales.data();
    const float* ws = w_scales.data();
    LLMNPU_TRACE_SPAN_TILE("matmul.w8a8_rowcol", "kernel", -1, -1, -1,
                           "m", static_cast<int>(m));
    RowParallel(m, k * n, [&](int64_t r0, int64_t r1) {
        LLMNPU_TRACE_SPAN_TILE("matmul.w8a8_rowcol.rows", "kernel", -1,
                               -1, -1, "rows", static_cast<int>(r1 - r0));
        TiledI8Rows(
            pa, k, w, pc, r0, r1,
            [&](int64_t row) { return as[static_cast<size_t>(row)]; },
            [&](int64_t j) { return ws[static_cast<size_t>(j)]; });
    });
    return c;
}

Tensor
MatMulPerGroup(const Tensor& a, const PerGroupWeights& w)
{
    LLMNPU_CHECK(a.dtype() == DType::kF32);
    const int64_t m = a.Rows(), k = a.Cols(), n = w.q.Cols();
    LLMNPU_CHECK_EQ(k, w.q.Rows());
    const int g_size = w.group_size;
    const int groups = w.num_groups;
    const int64_t panels = NumPanels(n);

    // Pack once per call: one byte per weight, amortized over M rows.
    const PackedWeightsI8 wp = PackWeightsI8(w.q, {1.0f});

    Tensor c({m, n}, DType::kF32);
    const float* pa = a.Data<float>();
    float* pc = c.Data<float>();

    LLMNPU_TRACE_SPAN_TILE("matmul.pergroup", "kernel", -1, -1, -1, "m",
                           static_cast<int>(m));
    RowParallel(m, k * n, [&](int64_t r0, int64_t r1) {
        LLMNPU_TRACE_SPAN_TILE("matmul.pergroup.rows", "kernel", -1, -1,
                               -1, "rows", static_cast<int>(r1 - r0));
        // Per-participant scratch: a kMR-row block is quantized up front,
        // then one pass over the panels, so the int8 panel widening inside
        // the micro-kernel is amortized over the whole row block.
        std::vector<int8_t> a_q(static_cast<size_t>(kMR * k));
        std::vector<float> a_scales(static_cast<size_t>(kMR * groups));
        int32_t acc[kMR * kPanelWidth];
        float cbuf[kMR * kPanelWidth];
        for (int64_t r = r0; r < r1; r += kMR) {
            const int mr = static_cast<int>(std::min<int64_t>(kMR, r1 - r));
            for (int rr = 0; rr < mr; ++rr) {
                const float* arow = pa + (r + rr) * k;
                int8_t* qrow = a_q.data() + rr * k;
                float* srow = a_scales.data() + rr * groups;
                for (int g = 0; g < groups; ++g) {
                    const int64_t k0 = static_cast<int64_t>(g) * g_size;
                    // Identical quantization math to the naive kernel.
                    float absmax = 0.0f;
                    for (int t = 0; t < g_size; ++t) {
                        absmax = std::max(absmax, std::abs(arow[k0 + t]));
                    }
                    const float a_scale =
                        absmax > 0.0f ? absmax / 127.0f : 1.0f;
                    const float inv = 1.0f / a_scale;
                    for (int t = 0; t < g_size; ++t) {
                        qrow[k0 + t] = static_cast<int8_t>(std::clamp(
                            std::nearbyint(arow[k0 + t] * inv), -127.0f,
                            127.0f));
                    }
                    srow[g] = a_scale;
                }
            }
            for (int64_t p = 0; p < panels; ++p) {
                const int8_t* bp = wp.data.data() + p * k * kPanelWidth;
                const int64_t j0 = p * kPanelWidth;
                const int64_t ncols = std::min<int64_t>(kPanelWidth, n - j0);
                for (int j = 0; j < mr * kPanelWidth; ++j) cbuf[j] = 0.0f;
                for (int g = 0; g < groups; ++g) {
                    const int64_t k0 = static_cast<int64_t>(g) * g_size;
                    switch (mr) {
                      case 4:
                        MicroKernelI8<4>(a_q.data(), k, bp, k0, k0 + g_size,
                                         acc);
                        break;
                      case 3:
                        MicroKernelI8<3>(a_q.data(), k, bp, k0, k0 + g_size,
                                         acc);
                        break;
                      case 2:
                        MicroKernelI8<2>(a_q.data(), k, bp, k0, k0 + g_size,
                                         acc);
                        break;
                      default:
                        MicroKernelI8<1>(a_q.data(), k, bp, k0, k0 + g_size,
                                         acc);
                        break;
                    }
                    for (int rr = 0; rr < mr; ++rr) {
                        const float as = a_scales[static_cast<size_t>(
                            rr * groups + g)];
                        const int32_t* arow = acc + rr * kPanelWidth;
                        float* crow = cbuf + rr * kPanelWidth;
                        for (int64_t j = 0; j < ncols; ++j) {
                            crow[j] += static_cast<float>(arow[j]) * as *
                                       w.GroupScale(g, j0 + j);
                        }
                    }
                }
                for (int rr = 0; rr < mr; ++rr) {
                    float* crow = pc + (r + rr) * n + j0;
                    const float* brow = cbuf + rr * kPanelWidth;
                    for (int64_t j = 0; j < ncols; ++j) crow[j] = brow[j];
                }
            }
        }
    });
    return c;
}

Tensor
MatMulRowSubset(const Tensor& a_sub, const Tensor& w,
                const std::vector<int>& rows)
{
    LLMNPU_CHECK(a_sub.dtype() == DType::kF32);
    LLMNPU_CHECK(w.dtype() == DType::kF32);
    LLMNPU_CHECK_EQ(a_sub.Cols(), static_cast<int64_t>(rows.size()));
    const int64_t m = a_sub.Rows(), n = w.Cols();
    const int64_t num_rows = static_cast<int64_t>(rows.size());
    // Validate the subset once, outside the hot loop.
    for (int row : rows) {
        LLMNPU_CHECK_GE(row, 0);
        LLMNPU_CHECK_LT(row, w.Rows());
    }
    Tensor c = Tensor::Zeros({m, n});
    const float* pa = a_sub.Data<float>();
    const float* pw = w.Data<float>();
    float* pc = c.Data<float>();
    const int* idx = rows.data();
    RowParallel(m, num_rows * n, [&](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
            float* __restrict crow = pc + i * n;
            for (int64_t t = 0; t < num_rows; ++t) {
                const float av = pa[i * num_rows + t];
                if (av == 0.0f) continue;
                const float* __restrict wrow = pw + idx[t] * n;
                for (int64_t j = 0; j < n; ++j) crow[j] += av * wrow[j];
            }
        }
    });
    return c;
}

}  // namespace llmnpu
