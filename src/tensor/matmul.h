/**
 * @file
 * Matrix multiplication kernels: fp32 reference, per-tensor W8A8 (the
 * NPU-friendly form), and per-group W8A8 (the form that forces sub-tensor
 * splits plus float reduction on NPUs, Figure 3(b)).
 */
#ifndef LLMNPU_TENSOR_MATMUL_H
#define LLMNPU_TENSOR_MATMUL_H

#include "src/tensor/quantize.h"
#include "src/tensor/tensor.h"

namespace llmnpu {

/** C = A @ B with A [M x K] f32 and B [K x N] f32. */
Tensor MatMulF32(const Tensor& a, const Tensor& b);

/**
 * Per-tensor-activation W8A8 matmul: C = (A_q @ W_q) * a_scale * w_scale[n].
 *
 * INT32 accumulation over the full K dimension, one dequantization at the
 * end — exactly the MatMul shape mobile NPUs accelerate (Figure 3(a)).
 * Weight scales may be uniform (size 1) or per output channel (size N);
 * per-output-channel dequantization is a post-accumulation column multiply
 * and therefore equally NPU-friendly (supported by QNN).
 */
Tensor MatMulW8A8PerTensor(const Tensor& a_q, float a_scale,
                           const Tensor& w_q,
                           const std::vector<float>& w_scales);

/**
 * Vector-wise W8A8 matmul (LLM.Int8()-style): per-row activation scales and
 * per-column weight scales, C[m, n] = acc * a_scales[m] * w_scales[n].
 */
Tensor MatMulW8A8RowCol(const Tensor& a_q, const std::vector<float>& a_scales,
                        const Tensor& w_q,
                        const std::vector<float>& w_scales);

/**
 * Per-group W8A8 matmul (Figure 3(b)).
 *
 * Activations are quantized per (row, group) on the fly; each group's INT32
 * partial product is dequantized and accumulated in float, modeling the
 * "sub-tensor MatMuls + float sum" execution the paper identifies as the
 * NPU-hostile pattern.
 *
 * @param a f32 activations [M x K].
 * @param w per-group quantized weights [K x N].
 */
Tensor MatMulPerGroup(const Tensor& a, const PerGroupWeights& w);

/**
 * fp32 matmul restricted to a subset of K rows of the weight matrix:
 * C = A_sub @ W[rows, :], where A_sub is [M x |rows|].
 *
 * This is the compact-tensor CPU kernel used by shadow outlier execution:
 * the extracted outlier channels form A_sub and `rows` are the matching
 * weight rows.
 */
Tensor MatMulRowSubset(const Tensor& a_sub, const Tensor& w,
                       const std::vector<int>& rows);

}  // namespace llmnpu

#endif  // LLMNPU_TENSOR_MATMUL_H
