/**
 * @file
 * Matrix multiplication kernels: fp32 reference, per-tensor W8A8 (the
 * NPU-friendly form), and per-group W8A8 (the form that forces sub-tensor
 * splits plus float reduction on NPUs, Figure 3(b)).
 *
 * Two implementations exist for every kernel:
 *
 *  - The public entry points (MatMulF32, MatMulW8A8PerTensor, ...) are
 *    cache-blocked, register-tiled and multi-threaded (src/tensor/
 *    kernels.cc): weights are packed into panel-major layout (kPanelWidth
 *    output columns per panel, contiguous along K) so the micro-kernel
 *    streams both operands, and row blocks are distributed over the shared
 *    ThreadPool (LLMNPU_NUM_THREADS).
 *  - The *Naive triple-loop variants are the original reference kernels.
 *    They define the semantics, serve as the equivalence oracle in
 *    tests/kernels_test.cc, and are what bench_kernels reports speedups
 *    against.
 *
 * Determinism: every kernel computes each output element with a fixed
 * K-ascending accumulation order that does not depend on the thread count
 * or row partition. The INT8 kernels (int32 accumulation, scale multiplies
 * only) are bitwise deterministic across thread counts; the f32 kernels are
 * deterministic up to the usual summation-order-free guarantee (each row's
 * order is fixed, so chunked prefill stays bit-comparable).
 */
#ifndef LLMNPU_TENSOR_MATMUL_H
#define LLMNPU_TENSOR_MATMUL_H

#include "src/tensor/quantize.h"
#include "src/tensor/tensor.h"

namespace llmnpu {

/** Output columns per packed panel; K rows of a panel are contiguous. */
constexpr int kPanelWidth = 16;

/**
 * An f32 weight matrix [K x N] re-laid out panel-major for the tiled
 * kernels: panel p holds columns [p*kPanelWidth, (p+1)*kPanelWidth) with
 * the K dimension contiguous inside the panel; the last panel is
 * zero-padded to kPanelWidth. Pack once at load, reuse every forward.
 */
struct PackedWeightsF32 {
    int64_t k = 0;
    int64_t n = 0;
    std::vector<float> data;  ///< [ceil(n/kPanelWidth) * k * kPanelWidth]

    bool Empty() const { return data.empty(); }
};

/** Packs a [K x N] f32 weight matrix into panel-major layout. */
PackedWeightsF32 PackWeightsF32(const Tensor& w);

/**
 * Packs the transpose of a [N x K] f32 matrix (e.g. a tied embedding used
 * as lm_head) into the panel-major layout of the implied [K x N] matrix,
 * without materializing the transpose.
 */
PackedWeightsF32 PackWeightsF32Transposed(const Tensor& w);

/** Panel-major packed INT8 weights plus their per-column (or uniform)
 *  dequantization scales. */
struct PackedWeightsI8 {
    int64_t k = 0;
    int64_t n = 0;
    std::vector<int8_t> data;   ///< [ceil(n/kPanelWidth) * k * kPanelWidth]
    std::vector<float> scales;  ///< size 1 (uniform) or N (per column)

    bool Empty() const { return data.empty(); }
};

/** Packs per-column-quantized weights into panel-major layout. */
PackedWeightsI8 PackWeightsI8(const Tensor& w_q, std::vector<float> scales);

/** C = A @ B with A [M x K] f32 and B [K x N] f32 (tiled + threaded). */
Tensor MatMulF32(const Tensor& a, const Tensor& b);

/** MatMulF32 against pre-packed weights (no per-call packing cost). */
Tensor MatMulF32Packed(const Tensor& a, const PackedWeightsF32& w);

/** Reference triple-loop MatMulF32 (equivalence oracle / bench baseline). */
Tensor MatMulF32Naive(const Tensor& a, const Tensor& b);

/**
 * Per-tensor-activation W8A8 matmul: C = (A_q @ W_q) * a_scale * w_scale[n].
 *
 * INT32 accumulation over the full K dimension, one dequantization at the
 * end — exactly the MatMul shape mobile NPUs accelerate (Figure 3(a)).
 * Weight scales may be uniform (size 1) or per output channel (size N);
 * per-output-channel dequantization is a post-accumulation column multiply
 * and therefore equally NPU-friendly (supported by QNN).
 *
 * Bitwise identical to the *Naive variant at any thread count.
 */
Tensor MatMulW8A8PerTensor(const Tensor& a_q, float a_scale,
                           const Tensor& w_q,
                           const std::vector<float>& w_scales);

/** MatMulW8A8PerTensor against pre-packed weights. */
Tensor MatMulW8A8PerTensorPacked(const Tensor& a_q, float a_scale,
                                 const PackedWeightsI8& w);

/** Reference triple-loop W8A8 per-tensor matmul. */
Tensor MatMulW8A8PerTensorNaive(const Tensor& a_q, float a_scale,
                                const Tensor& w_q,
                                const std::vector<float>& w_scales);

/**
 * Vector-wise W8A8 matmul (LLM.Int8()-style): per-row activation scales and
 * per-column weight scales, C[m, n] = acc * a_scales[m] * w_scales[n].
 */
Tensor MatMulW8A8RowCol(const Tensor& a_q, const std::vector<float>& a_scales,
                        const Tensor& w_q,
                        const std::vector<float>& w_scales);

/** Reference triple-loop vector-wise W8A8 matmul. */
Tensor MatMulW8A8RowColNaive(const Tensor& a_q,
                             const std::vector<float>& a_scales,
                             const Tensor& w_q,
                             const std::vector<float>& w_scales);

/**
 * Per-group W8A8 matmul (Figure 3(b)).
 *
 * Activations are quantized per (row, group) on the fly; each group's INT32
 * partial product is dequantized and accumulated in float, modeling the
 * "sub-tensor MatMuls + float sum" execution the paper identifies as the
 * NPU-hostile pattern.
 *
 * @param a f32 activations [M x K].
 * @param w per-group quantized weights [K x N].
 */
Tensor MatMulPerGroup(const Tensor& a, const PerGroupWeights& w);

/** Reference per-group W8A8 matmul. */
Tensor MatMulPerGroupNaive(const Tensor& a, const PerGroupWeights& w);

/**
 * fp32 matmul restricted to a subset of K rows of the weight matrix:
 * C = A_sub @ W[rows, :], where A_sub is [M x |rows|].
 *
 * This is the compact-tensor CPU kernel used by shadow outlier execution:
 * the extracted outlier channels form A_sub and `rows` are the matching
 * weight rows. Row indices are validated once up front, outside the hot
 * loop.
 */
Tensor MatMulRowSubset(const Tensor& a_sub, const Tensor& w,
                       const std::vector<int>& rows);

}  // namespace llmnpu

#endif  // LLMNPU_TENSOR_MATMUL_H
