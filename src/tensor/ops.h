/**
 * @file
 * Float transformer operators: the "orange" ops of Figure 5 that stay in
 * floating point in every quantized inference pipeline (Table 4) —
 * normalization, attention, activation functions, RoPE.
 */
#ifndef LLMNPU_TENSOR_OPS_H
#define LLMNPU_TENSOR_OPS_H

#include "src/tensor/tensor.h"

namespace llmnpu {

/** Row-wise numerically-stable softmax, in place, on a rank-2 f32 tensor. */
void SoftmaxRowsInPlace(Tensor& x);

/** LayerNorm over the last dimension with learned gain/bias. */
Tensor LayerNorm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                 float eps = 1e-5f);

/** RMSNorm over the last dimension with learned gain (LlaMA-style). */
Tensor RMSNorm(const Tensor& x, const Tensor& gamma, float eps = 1e-6f);

/** SiLU (x * sigmoid(x)), in place. */
void SiluInPlace(Tensor& x);

/** GeLU (tanh approximation), in place. */
void GeluInPlace(Tensor& x);

/** Elementwise a + b. */
Tensor Add(const Tensor& a, const Tensor& b);

/** Elementwise a += b. */
void AddInPlace(Tensor& a, const Tensor& b);

/** Elementwise a * b. */
Tensor Mul(const Tensor& a, const Tensor& b);

/**
 * Applies rotary position embeddings in place.
 *
 * @param x [seq x (heads * head_dim)] packed Q or K rows.
 * @param num_heads number of heads packed into the row.
 * @param head_dim per-head dimension (must be even).
 * @param pos_offset global position of row 0 (for chunked prefill).
 * @param theta RoPE base (10000 for all paper models).
 */
void ApplyRope(Tensor& x, int num_heads, int head_dim, int64_t pos_offset,
               float theta = 10000.0f);

/**
 * ApplyRope restricted to rows [row_begin, row_begin + row_count) of `x`,
 * with row `row_begin` at global position `pos_offset`. Used by the batched
 * forward path, where each sequence's segment of a stacked [sum(m_i) x d]
 * tensor carries its own position offset. Bitwise identical to calling the
 * whole-tensor overload on a copy of the segment.
 */
void ApplyRopeRows(Tensor& x, int64_t row_begin, int64_t row_count,
                   int num_heads, int head_dim, int64_t pos_offset,
                   float theta = 10000.0f);

/**
 * Causal multi-head attention with grouped-query support.
 *
 * The Q rows sit at global positions [q_pos_offset, q_pos_offset + q_len);
 * K/V hold *all* positions [0, kv_len). Row i of Q may attend to K/V
 * positions <= q_pos_offset + i — this is exactly the chunk-level causal
 * dependency that makes chunk-wise prefill equivalent to full prefill
 * (paper §3.2).
 *
 * @param q [q_len x (num_heads * head_dim)]
 * @param k [kv_len x (num_kv_heads * head_dim)]
 * @param v [kv_len x (num_kv_heads * head_dim)]
 * @return [q_len x (num_heads * head_dim)]
 */
Tensor CausalAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                       int num_heads, int num_kv_heads, int64_t q_pos_offset);

}  // namespace llmnpu

#endif  // LLMNPU_TENSOR_OPS_H
