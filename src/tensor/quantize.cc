#include "src/tensor/quantize.h"

#include <algorithm>
#include <cmath>

namespace llmnpu {

float
AbsMax(const Tensor& x)
{
    const float* p = x.Data<float>();
    float m = 0.0f;
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        m = std::max(m, std::abs(p[i]));
    }
    return m;
}

QuantParams
ComputeSymmetricScale(const Tensor& x)
{
    QuantParams params;
    const float absmax = AbsMax(x);
    params.scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    return params;
}

Tensor
QuantizeSymmetric(const Tensor& x, const QuantParams& params)
{
    LLMNPU_CHECK(x.dtype() == DType::kF32);
    LLMNPU_CHECK_GT(params.scale, 0.0f);
    Tensor out(x.shape(), DType::kI8);
    const float* in = x.Data<float>();
    int8_t* q = out.Data<int8_t>();
    // The reciprocal is taken in double: a subnormal float scale (absmax
    // near FLT_MIN / 127) would overflow 1.0f / scale to inf.
    const double inv = 1.0 / static_cast<double>(params.scale);
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        const double scaled = static_cast<double>(in[i]) * inv;
        const double clamped = std::clamp(std::nearbyint(scaled), -127.0,
                                          127.0);
        q[i] = static_cast<int8_t>(clamped);
    }
    return out;
}

Tensor
Dequantize(const Tensor& q, const QuantParams& params)
{
    LLMNPU_CHECK(q.dtype() == DType::kI8);
    Tensor out(q.shape(), DType::kF32);
    const int8_t* in = q.Data<int8_t>();
    float* f = out.Data<float>();
    for (int64_t i = 0; i < q.NumElements(); ++i) {
        f[i] = static_cast<float>(in[i]) * params.scale;
    }
    return out;
}

PerColumnWeights
QuantizePerColumn(const Tensor& w)
{
    LLMNPU_CHECK(w.dtype() == DType::kF32);
    LLMNPU_CHECK_EQ(w.Rank(), 2);
    const int64_t k = w.Rows();
    const int64_t n = w.Cols();
    PerColumnWeights out;
    out.q = Tensor({k, n}, DType::kI8);
    out.scales.assign(static_cast<size_t>(n), 1.0f);

    const float* src = w.Data<float>();
    int8_t* dst = out.q.Data<int8_t>();
    for (int64_t col = 0; col < n; ++col) {
        float absmax = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) {
            absmax = std::max(absmax, std::abs(src[kk * n + col]));
        }
        const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
        out.scales[static_cast<size_t>(col)] = scale;
        const double inv = 1.0 / static_cast<double>(scale);
        for (int64_t kk = 0; kk < k; ++kk) {
            dst[kk * n + col] = static_cast<int8_t>(std::clamp(
                std::nearbyint(static_cast<double>(src[kk * n + col]) * inv),
                -127.0, 127.0));
        }
    }
    return out;
}

Tensor
DequantizePerColumn(const PerColumnWeights& w)
{
    const int64_t k = w.q.Rows();
    const int64_t n = w.q.Cols();
    Tensor out({k, n}, DType::kF32);
    const int8_t* src = w.q.Data<int8_t>();
    float* dst = out.Data<float>();
    for (int64_t kk = 0; kk < k; ++kk) {
        for (int64_t col = 0; col < n; ++col) {
            dst[kk * n + col] = static_cast<float>(src[kk * n + col]) *
                                w.scales[static_cast<size_t>(col)];
        }
    }
    return out;
}

PerGroupWeights
QuantizePerGroup(const Tensor& w, int group_size)
{
    LLMNPU_CHECK(w.dtype() == DType::kF32);
    LLMNPU_CHECK_EQ(w.Rank(), 2);
    LLMNPU_CHECK_GT(group_size, 0);
    const int64_t k = w.Rows();
    const int64_t n = w.Cols();
    LLMNPU_CHECK_EQ(k % group_size, 0);

    PerGroupWeights out;
    out.group_size = group_size;
    out.num_groups = static_cast<int>(k / group_size);
    out.q = Tensor({k, n}, DType::kI8);
    out.scales.assign(static_cast<size_t>(out.num_groups) *
                          static_cast<size_t>(n),
                      1.0f);

    const float* src = w.Data<float>();
    int8_t* dst = out.q.Data<int8_t>();
    for (int g = 0; g < out.num_groups; ++g) {
        const int64_t k0 = static_cast<int64_t>(g) * group_size;
        for (int64_t col = 0; col < n; ++col) {
            float absmax = 0.0f;
            for (int64_t kk = k0; kk < k0 + group_size; ++kk) {
                absmax = std::max(absmax, std::abs(src[kk * n + col]));
            }
            const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
            out.scales[static_cast<size_t>(g) * n + col] = scale;
            const double inv = 1.0 / static_cast<double>(scale);
            for (int64_t kk = k0; kk < k0 + group_size; ++kk) {
                const double v = std::clamp(
                    std::nearbyint(static_cast<double>(src[kk * n + col]) *
                                   inv),
                    -127.0, 127.0);
                dst[kk * n + col] = static_cast<int8_t>(v);
            }
        }
    }
    return out;
}

Tensor
DequantizePerGroup(const PerGroupWeights& w)
{
    const int64_t k = w.q.Rows();
    const int64_t n = w.q.Cols();
    Tensor out({k, n}, DType::kF32);
    const int8_t* src = w.q.Data<int8_t>();
    float* dst = out.Data<float>();
    for (int64_t kk = 0; kk < k; ++kk) {
        const int g = static_cast<int>(kk / w.group_size);
        for (int64_t col = 0; col < n; ++col) {
            dst[kk * n + col] = static_cast<float>(src[kk * n + col]) *
                                w.GroupScale(g, col);
        }
    }
    return out;
}

}  // namespace llmnpu
