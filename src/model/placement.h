/**
 * @file
 * Decode placement: which processor executes a step's linears. Split out
 * of decode_backend.h so the cost-model plane (src/engines, src/serving)
 * can name a placement without pulling in the numeric-plane transformer
 * and tensor headers.
 */
#ifndef LLMNPU_MODEL_PLACEMENT_H
#define LLMNPU_MODEL_PLACEMENT_H

#include <cstdint>
#include <string>

namespace llmnpu {

/** Where a step's linears execute. */
enum class DecodePlacement : uint8_t {
    kCpuFloat = 0,  ///< packed fp32 matmuls on the CPU/GPU float processor
    kNpuQuant = 1,  ///< W8A8 NPU term + per-sequence shadow outliers
};

/** Short name ("cpu" / "npu") for reports and METRIC rows. */
inline std::string
DecodePlacementName(DecodePlacement placement)
{
    return placement == DecodePlacement::kNpuQuant ? "npu" : "cpu";
}

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_PLACEMENT_H
