#include "src/model/kv_cache.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"

namespace llmnpu {

KvCache::KvCache(int num_layers, int64_t kv_dim)
    : kv_dim_(kv_dim),
      k_(static_cast<size_t>(num_layers)),
      v_(static_cast<size_t>(num_layers))
{
    LLMNPU_CHECK_GT(num_layers, 0);
    LLMNPU_CHECK_GT(kv_dim, 0);
}

void
KvCache::Append(int layer, const Tensor& k, const Tensor& v)
{
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, num_layers());
    LLMNPU_CHECK_EQ(k.Cols(), kv_dim_);
    LLMNPU_CHECK(k.shape() == v.shape());
    auto& ks = k_[static_cast<size_t>(layer)];
    auto& vs = v_[static_cast<size_t>(layer)];
    const size_t n = static_cast<size_t>(k.NumElements());
    const size_t old = ks.size();
    ks.resize(old + n);
    vs.resize(old + n);
    std::memcpy(ks.data() + old, k.Data<float>(), n * sizeof(float));
    std::memcpy(vs.data() + old, v.Data<float>(), n * sizeof(float));

    // Layer-lockstep invariant: a chunk is appended layer 0 first, so a
    // later layer may never lead layer 0, and no layer may lead the
    // shortest layer by more than the in-flight chunk. O(num_layers) per
    // append — cheap next to the copy.
    int64_t min_len = SeqLen(0), max_len = min_len;
    for (int l = 1; l < num_layers(); ++l) {
        const int64_t len = SeqLen(l);
        min_len = std::min(min_len, len);
        max_len = std::max(max_len, len);
    }
    LLMNPU_CHECK_LE(max_len - min_len, k.Rows());
    if (layer > 0) LLMNPU_CHECK_LE(SeqLen(layer), SeqLen(0));
}

Tensor
KvCache::Keys(int layer) const
{
    const auto& ks = k_[static_cast<size_t>(layer)];
    const int64_t len = static_cast<int64_t>(ks.size()) / kv_dim_;
    Tensor out({len, kv_dim_}, DType::kF32);
    std::memcpy(out.Data<float>(), ks.data(), ks.size() * sizeof(float));
    return out;
}

Tensor
KvCache::Values(int layer) const
{
    const auto& vs = v_[static_cast<size_t>(layer)];
    const int64_t len = static_cast<int64_t>(vs.size()) / kv_dim_;
    Tensor out({len, kv_dim_}, DType::kF32);
    std::memcpy(out.Data<float>(), vs.data(), vs.size() * sizeof(float));
    return out;
}

int64_t
KvCache::SeqLen(int layer) const
{
    return static_cast<int64_t>(k_[static_cast<size_t>(layer)].size()) /
           kv_dim_;
}

int64_t
KvCache::SizeBytes() const
{
    int64_t total = 0;
    for (size_t l = 0; l < k_.size(); ++l) {
        total += static_cast<int64_t>(k_[l].size() + v_[l].size()) * 4;
    }
    return total;
}

}  // namespace llmnpu
