/**
 * @file
 * Reference decoder-only transformer with pluggable linear executors.
 *
 * The forward pass follows Figure 5: norms, RoPE and attention are always
 * computed in float ("orange" ops), while every linear projection is routed
 * through a LinearExecutor ("blue" ops) — the fp32 reference executor, any of
 * the baseline quantizers in src/quant, or llm.npu's shadow-outlier executor.
 * This is what makes accuracy comparisons apples-to-apples: all algorithms
 * share one forward implementation and differ only in the matmul kernel.
 */
#ifndef LLMNPU_MODEL_TRANSFORMER_H
#define LLMNPU_MODEL_TRANSFORMER_H

#include <memory>
#include <string>
#include <vector>

#include "src/model/kv_cache.h"
#include "src/model/weights.h"
#include "src/tensor/tensor.h"

namespace llmnpu {

/** Computes y = Linear(layer, kind)(x); implementations choose the kernel. */
class LinearExecutor
{
  public:
    virtual ~LinearExecutor() = default;

    /** @param x f32 activations [seq x k]; @return f32 [seq x n]. */
    virtual Tensor Forward(int layer, LinearKind kind, const Tensor& x) = 0;

    /** Algorithm name for reports ("FP16", "SmoothQuant", ...). */
    virtual std::string Name() const = 0;
};

/** Exact fp32 linear executor (the "FP16" baseline of Table 6). */
class Fp32LinearExecutor : public LinearExecutor
{
  public:
    explicit Fp32LinearExecutor(const ModelWeights& weights)
        : weights_(weights)
    {}

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    std::string Name() const override { return "FP16"; }

  private:
    const ModelWeights& weights_;
};

/**
 * The reference transformer.
 *
 * Chunk-exactness contract: Forward(tokens[0..n)) in one call produces
 * bit-comparable hidden states to any sequence of Forward calls over a
 * partition of the same tokens with the same cache (§3.2; verified by
 * tests/model/transformer_test.cc).
 */
class Transformer
{
  public:
    explicit Transformer(const ModelWeights& weights);

    const ModelConfig& config() const { return weights_.config; }
    const ModelWeights& weights() const { return weights_; }

    /** Creates an empty cache sized for this model. */
    KvCache MakeCache() const;

    /** Embedding lookup: tokens -> [seq x hidden]. */
    Tensor Embed(const std::vector<int>& tokens) const;

    /**
     * Runs all blocks over `tokens`, appending K/V to `cache`.
     * Positions are cache.SeqLen() .. cache.SeqLen() + tokens.size() - 1.
     * @return final-norm hidden states [seq x hidden].
     */
    Tensor Forward(const std::vector<int>& tokens, KvCache& cache,
                   LinearExecutor& linears) const;

    /** Logits from hidden states via the tied embedding: [seq x vocab]. */
    Tensor Logits(const Tensor& hidden) const;

    /** Greedy next token from the last row of `logits`. */
    int ArgmaxLastRow(const Tensor& logits) const;

    /**
     * Prefills `prompt` then greedily decodes `max_new_tokens`.
     * @return generated token ids.
     */
    std::vector<int> Generate(const std::vector<int>& prompt,
                              int max_new_tokens,
                              LinearExecutor& linears) const;

  private:
    Tensor ForwardBlock(int layer, const Tensor& x, KvCache& cache,
                        int64_t pos_offset, LinearExecutor& linears) const;

    Tensor Normed(const Tensor& x, const Tensor& gamma, const Tensor& beta)
        const;

    const ModelWeights& weights_;
};

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_TRANSFORMER_H
