/**
 * @file
 * Reference decoder-only transformer with pluggable linear executors.
 *
 * The forward pass follows Figure 5: norms, RoPE and attention are always
 * computed in float ("orange" ops), while every linear projection is routed
 * through a LinearExecutor ("blue" ops) — the fp32 reference executor, any of
 * the baseline quantizers in src/quant, or llm.npu's shadow-outlier executor.
 * This is what makes accuracy comparisons apples-to-apples: all algorithms
 * share one forward implementation and differ only in the matmul kernel.
 */
#ifndef LLMNPU_MODEL_TRANSFORMER_H
#define LLMNPU_MODEL_TRANSFORMER_H

#include <memory>
#include <string>
#include <vector>

#include "src/model/batched_kv_cache.h"
#include "src/model/kv_cache.h"
#include "src/model/placement.h"
#include "src/model/weights.h"
#include "src/tensor/tensor.h"

namespace llmnpu {

class DecodeBackend;

/**
 * Segment boundaries of a stacked batch activation: rows
 * [segments[i], segments[i+1]) of the [sum(m_i) x k] tensor belong to
 * sequence i. Size B+1 with segments[0] == 0 and segments[B] == rows.
 */
using BatchSegments = std::vector<int64_t>;

/** Panics unless `segments` is a proper partition of x's rows (size >= 2,
 *  starts at 0, strictly increasing, ends at x.Rows()). Every ForwardBatch
 *  implementation that dereferences the segment bounds must call this. */
void CheckBatchSegments(const Tensor& x, const BatchSegments& segments);

/** Computes y = Linear(layer, kind)(x); implementations choose the kernel. */
class LinearExecutor
{
  public:
    virtual ~LinearExecutor() = default;

    /** @param x f32 activations [seq x k]; @return f32 [seq x n]. */
    virtual Tensor Forward(int layer, LinearKind kind, const Tensor& x) = 0;

    /**
     * Batched entry point: `x` stacks B sequences' activations row-block by
     * row-block ([sum(m_i) x k], boundaries in `segments`); @return the
     * stacked [sum(m_i) x n] outputs.
     *
     * Contract: rows of the result are bitwise identical to calling
     * Forward() on each segment alone. The base implementation does exactly
     * that (slice, forward, scatter); executors whose per-row math is
     * independent of the other rows (fp32, static-scale and per-row-scale
     * quantizers, the shadow executor's NPU term) override it with one
     * stacked kernel call so B concurrent m=1 matvecs become a single m=B
     * tiled matmul. Executors with batch-global dynamics (PerTensorExecutor
     * derives its activation scale from all rows of x) must keep the
     * per-segment path — a stacked call would change every sequence's
     * quantization grid.
     */
    virtual Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                                const BatchSegments& segments);

    /** Algorithm name for reports ("FP16", "SmoothQuant", ...). */
    virtual std::string Name() const = 0;
};

/** Exact fp32 linear executor (the "FP16" baseline of Table 6). */
class Fp32LinearExecutor : public LinearExecutor
{
  public:
    explicit Fp32LinearExecutor(const ModelWeights& weights)
        : weights_(weights)
    {}

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    /** One stacked matmul over the packed panels (rows are independent). */
    Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                        const BatchSegments& segments) override;
    std::string Name() const override { return "FP16"; }

  private:
    const ModelWeights& weights_;
};

/** One sequence's contribution to a batched forward step. */
struct BatchSeq {
    /** Sequence slot in the BatchedKvCache. */
    int seq = 0;
    /** Tokens this sequence runs this step: a prefill chunk (m_i > 1) or a
     *  single decode token (m_i == 1). */
    std::vector<int> tokens;
};

/**
 * The reference transformer.
 *
 * Chunk-exactness contract: Forward(tokens[0..n)) in one call produces
 * bit-comparable hidden states to any sequence of Forward calls over a
 * partition of the same tokens with the same cache (§3.2; verified by
 * tests/model/transformer_test.cc).
 */
class Transformer
{
  public:
    explicit Transformer(const ModelWeights& weights);

    const ModelConfig& config() const { return weights_.config; }
    const ModelWeights& weights() const { return weights_; }

    /** Creates an empty cache sized for this model. */
    KvCache MakeCache() const;

    /** Creates an empty batched cache with `num_sequences` slots. */
    BatchedKvCache MakeBatchedCache(int num_sequences = 0) const;

    /** Batched cache with explicit page geometry / pool budget (bounded
     *  pools are the serving layer's KV admission-control resource). */
    BatchedKvCache MakeBatchedCache(int num_sequences,
                                    PagedKvOptions options) const;

    /** Embedding lookup: tokens -> [seq x hidden]. */
    Tensor Embed(const std::vector<int>& tokens) const;

    /**
     * Runs all blocks over `tokens`, appending K/V to `cache`.
     * Positions are cache.SeqLen() .. cache.SeqLen() + tokens.size() - 1.
     * @return final-norm hidden states [seq x hidden].
     */
    Tensor Forward(const std::vector<int>& tokens, KvCache& cache,
                   LinearExecutor& linears) const;

    /**
     * Batched forward: runs B sequences of possibly different lengths
     * through one set of stacked matmuls.
     *
     * The B row blocks are stacked into a single [sum(m_i) x hidden]
     * activation so every linear runs as one tiled matmul (batched decode
     * turns B concurrent m=1 matvecs into one m=B matmul); norms and
     * activations are row-wise; RoPE and causal attention run per sequence
     * with that sequence's cache length as its position offset, each
     * sequence appending to and reading only its own KvCache slot.
     *
     * Batch-exactness contract (extends the chunk-exactness contract):
     * segment i of the result is bitwise identical to calling Forward() on
     * sequence i alone with the same per-sequence cache state, for every
     * executor honoring the ForwardBatch contract. Verified by
     * tests/batched_test.cc across ragged shapes and executors.
     *
     * @param batch sequences to advance; distinct `seq` slots, each with at
     *        least one token.
     * @return stacked final-norm hidden states [sum(m_i) x hidden], row
     *         blocks in `batch` order.
     */
    Tensor ForwardBatch(const std::vector<BatchSeq>& batch,
                        BatchedKvCache& cache,
                        LinearExecutor& linears) const;

    /**
     * ForwardBatch with per-sequence placement routing: sequence i's
     * linears execute on `placements[i]` (the NPU W8A8 shadow path or the
     * CPU float path) via `backend` (src/model/decode_backend.h). Norms,
     * RoPE and attention stay on the CPU float path either way — that is
     * the CPU/NPU handoff boundary. Placement size must equal batch size.
     *
     * Inherits the batch-exactness contract: segment i is bitwise
     * identical to running sequence i alone through an executor of the
     * same placement.
     */
    Tensor ForwardBatchPlaced(const std::vector<BatchSeq>& batch,
                              const std::vector<DecodePlacement>& placements,
                              BatchedKvCache& cache,
                              DecodeBackend& backend) const;

    /** Logits from hidden states via the tied embedding: [seq x vocab]. */
    Tensor Logits(const Tensor& hidden) const;

    /** Greedy next token from the last row of `logits`. */
    int ArgmaxLastRow(const Tensor& logits) const;

    /**
     * Prefills `prompt` then greedily decodes `max_new_tokens`.
     * @return generated token ids.
     */
    std::vector<int> Generate(const std::vector<int>& prompt,
                              int max_new_tokens,
                              LinearExecutor& linears) const;

  private:
    Tensor ForwardBlock(int layer, const Tensor& x, KvCache& cache,
                        int64_t pos_offset, LinearExecutor& linears) const;

    Tensor ForwardBlockBatch(int layer, const Tensor& x,
                             const std::vector<BatchSeq>& batch,
                             const BatchSegments& segments,
                             const std::vector<int64_t>& pos_offsets,
                             BatchedKvCache& cache,
                             LinearExecutor& linears) const;

    Tensor Normed(const Tensor& x, const Tensor& gamma, const Tensor& beta)
        const;

    const ModelWeights& weights_;
};

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_TRANSFORMER_H
