/**
 * @file
 * Decoder-only transformer configurations for the five mobile-sized LLMs the
 * paper evaluates (§4.1), plus scaled-down proxy configs used by the
 * numeric accuracy harness.
 *
 * Shapes (hidden size, layer count, head layout, FFN width, vocabulary) match
 * the public model cards so that every matmul the timing plane prices has the
 * same dimensions as on the authors' testbed. Block wiring is normalized to
 * the standard pre-norm residual structure; per-model norm/activation/gating
 * flags are preserved.
 */
#ifndef LLMNPU_MODEL_CONFIG_H
#define LLMNPU_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace llmnpu {

/** Normalization operator used by a model (always float, Table 4). */
enum class NormKind { kRMSNorm, kLayerNorm };

/** FFN activation function. */
enum class ActKind { kSiLU, kGeLU };

/** Identifies one linear (matmul) operator inside a transformer block. */
enum class LinearKind {
    kWq,
    kWk,
    kWv,
    kWo,
    kFfnGate,
    kFfnUp,
    kFfnDown,
};

/** Number of LinearKind values (dense 0..N-1 indexing). */
constexpr int kNumLinearKinds = static_cast<int>(LinearKind::kFfnDown) + 1;

/** Human-readable name of a LinearKind ("q_proj", "up_proj", ...). */
std::string LinearKindName(LinearKind kind);

/** Shape of one linear operator: y[*, n] = x[*, k] @ W[k, n]. */
struct LinearSpec {
    LinearKind kind;
    int64_t k = 0;  ///< input features
    int64_t n = 0;  ///< output features
};

/** Architecture description of a decoder-only LLM. */
struct ModelConfig {
    std::string name;
    int64_t hidden_size = 0;
    int num_layers = 0;
    int num_heads = 0;
    int num_kv_heads = 0;
    int head_dim = 0;
    int64_t ffn_hidden = 0;
    int64_t vocab_size = 0;
    int64_t max_context = 0;
    NormKind norm = NormKind::kRMSNorm;
    ActKind act = ActKind::kSiLU;
    bool gated_ffn = true;

    /**
     * Panics unless the config is internally consistent: every dimension
     * positive, hidden_size divisible by num_heads (so head_dim is exact,
     * never silently truncated), head_dim matching that quotient, even
     * head_dim (RoPE rotates pairs), and num_heads divisible by
     * num_kv_heads (whole GQA groups). Called at weight-generation/load
     * time so a malformed config fails loudly before any kernel runs on
     * mis-shaped tensors.
     */
    void Validate() const;

    /** The per-layer linear operators in execution order. */
    std::vector<LinearSpec> LayerLinears() const;

    /** Parameters in one block's linear operators. */
    int64_t LayerLinearParams() const;

    /** Parameters in all blocks' linear operators (prefill matmul weights). */
    int64_t MatMulParams() const;

    /** Total parameters including embedding and norms (lm_head tied). */
    int64_t TotalParams() const;

    /** INT8 weight bytes streamed per forward pass of the blocks. */
    int64_t MatMulWeightBytesInt8() const { return MatMulParams(); }
};

/** Qwen1.5-1.8B [27]: 24L, d=2048, 16 heads (MHA), FFN 5504, 32K context. */
ModelConfig Qwen15_1_8B();

/** Gemma-2B [9]: 18L, d=2048, 8 heads, MQA (1 KV head, d_h=256), FFN 16384. */
ModelConfig Gemma2B();

/** Phi-2-2.7B [16]: 32L, d=2560, 32 heads (MHA), FFN 10240, LayerNorm+GeLU. */
ModelConfig Phi2_2_7B();

/** LlaMA-2-7B [11]: 32L, d=4096, 32 heads (MHA), FFN 11008. */
ModelConfig Llama2_7B();

/** Mistral-7B [14]: 32L, d=4096, 32 heads, GQA (8 KV heads), FFN 14336. */
ModelConfig Mistral7B();

/** All five evaluation models, in the paper's order. */
std::vector<ModelConfig> PaperModels();

/** Looks up a paper model by name; fatal on unknown names. */
ModelConfig ModelByName(const std::string& name);

/** Tiny config for unit tests (runs a real forward pass in microseconds). */
ModelConfig TinyTestConfig();

/**
 * Scaled-down proxy of `base` for the numeric accuracy harness: preserves
 * the head layout ratio, FFN expansion ratio, norm/activation kinds, while
 * shrinking hidden size / layer count / vocabulary so a real forward pass is
 * cheap. Used by Table 6 / Figure 12 / Figure 16 benches.
 */
ModelConfig ScaledProxy(const ModelConfig& base, int64_t hidden,
                        int num_layers, int64_t vocab);

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_CONFIG_H
