#include "src/model/batched_kv_cache.h"

#include <algorithm>
#include <cstring>

namespace llmnpu {

BatchedKvCache::BatchedKvCache(int num_layers, int64_t kv_dim,
                               int num_sequences, PagedKvOptions options)
    : num_layers_(num_layers),
      kv_dim_(kv_dim),
      pool_(num_layers, kv_dim, options)
{
    LLMNPU_CHECK_GE(num_sequences, 0);
    seqs_.reserve(static_cast<size_t>(num_sequences));
    for (int i = 0; i < num_sequences; ++i) AddSequence();
}

const BatchedKvCache::SeqState&
BatchedKvCache::CheckedSeq(int seq) const
{
    LLMNPU_CHECK_GE(seq, 0);
    LLMNPU_CHECK_LT(seq, num_sequences());
    const SeqState& state = seqs_[static_cast<size_t>(seq)];
    LLMNPU_CHECK(!state.retired);
    return state;
}

BatchedKvCache::SeqState&
BatchedKvCache::CheckedSeq(int seq)
{
    return const_cast<SeqState&>(
        static_cast<const BatchedKvCache*>(this)->CheckedSeq(seq));
}

int
BatchedKvCache::AddSequence()
{
    SeqState state;
    state.layer_len.assign(static_cast<size_t>(num_layers_), 0);
    seqs_.push_back(std::move(state));
    ++live_;
    return static_cast<int>(seqs_.size()) - 1;
}

int
BatchedKvCache::AddSequenceSharingPrefix(int src, int64_t positions)
{
    {
        const SeqState& source = CheckedSeq(src);
        LLMNPU_CHECK_GE(positions, 0);
        for (int64_t len : source.layer_len) LLMNPU_CHECK_LE(positions, len);
    }
    // AddSequence() grows seqs_ and may reallocate it — re-acquire the
    // source after, never across, the push.
    const int seq = AddSequence();
    const SeqState& source = seqs_[static_cast<size_t>(src)];
    SeqState& state = seqs_[static_cast<size_t>(seq)];
    // A non-aligned fork shares the partial frontier page too; the first
    // write past `positions` (by either sibling) copy-on-writes it.
    const int64_t shared_pages = pool_.PagesFor(positions);
    state.pages.assign(source.pages.begin(),
                       source.pages.begin() + shared_pages);
    for (int64_t page : state.pages) pool_.AddRef(page);
    state.layer_len.assign(static_cast<size_t>(num_layers_), positions);
    return seq;
}

void
BatchedKvCache::RetireSequence(int seq)
{
    SeqState& state = CheckedSeq(seq);
    for (int64_t page : state.pages) pool_.Release(page);
    state.pages.clear();
    state.pages.shrink_to_fit();
    std::fill(state.layer_len.begin(), state.layer_len.end(), 0);
    state.retired = true;
    --live_;
}

bool
BatchedKvCache::IsRetired(int seq) const
{
    LLMNPU_CHECK_GE(seq, 0);
    LLMNPU_CHECK_LT(seq, num_sequences());
    return seqs_[static_cast<size_t>(seq)].retired;
}

bool
BatchedKvCache::CanAppend(int seq, int64_t positions) const
{
    const SeqState& state = CheckedSeq(seq);
    LLMNPU_CHECK_GE(positions, 0);
    const int64_t free = pool_.free_pages();
    if (free == kUnboundedFreePages) return true;
    const int64_t mapped = static_cast<int64_t>(state.pages.size());
    const int64_t len = state.layer_len[0];
    const int64_t needed = pool_.PagesFor(len + positions);
    // Mapped pages in the write range that a sibling still references each
    // cost one extra page: the append copy-on-writes them, and the sibling
    // keeps the original alive.
    int64_t cow = 0;
    for (int64_t p = len / page_size(); p < std::min(mapped, needed); ++p) {
        if (pool_.RefCount(state.pages[static_cast<size_t>(p)]) > 1) ++cow;
    }
    return needed - mapped + cow <= free;
}

void
BatchedKvCache::AppendRows(int seq, int layer, const Tensor& k,
                           const Tensor& v, int64_t row_begin,
                           int64_t row_count)
{
    SeqState& state = CheckedSeq(seq);
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, num_layers_);
    LLMNPU_CHECK_EQ(k.Rank(), 2);
    LLMNPU_CHECK_EQ(k.Cols(), kv_dim_);
    LLMNPU_CHECK(k.shape() == v.shape());
    LLMNPU_CHECK_GE(row_begin, 0);
    LLMNPU_CHECK_GT(row_count, 0);
    LLMNPU_CHECK_LE(row_begin + row_count, k.Rows());

    const int64_t ps = page_size();
    const int64_t len = state.layer_len[static_cast<size_t>(layer)];

    // Map any pages the new positions spill into. Layers append in
    // lockstep with layer 0 first, so this allocates on the layer-0 append
    // and is a no-op for the later layers of the same step.
    const int64_t needed = pool_.PagesFor(len + row_count);
    while (static_cast<int64_t>(state.pages.size()) < needed) {
        const int64_t page = pool_.AllocPage();
        LLMNPU_CHECK_GE(page, 0);  // exhausted: callers gate on CanAppend
        state.pages.push_back(page);
    }

    // Copy in page-contiguous runs straight from the stacked tensor.
    const float* pk = k.Data<float>() + row_begin * kv_dim_;
    const float* pv = v.Data<float>() + row_begin * kv_dim_;
    int64_t copied = 0;
    while (copied < row_count) {
        const int64_t pos = len + copied;
        const int64_t page_idx = pos / ps;
        const int64_t slot = pos % ps;
        const int64_t run = std::min(row_count - copied, ps - slot);
        int64_t page = state.pages[static_cast<size_t>(page_idx)];
        // Copy-on-write: a page a sibling still references must not see
        // this sequence's divergence. Clone it (whole buffer, all layers —
        // later layers of this step and the shared rows both live there),
        // repoint only this page table, release one reference. Only the
        // append frontier of a fork can be shared, so at most one clone
        // per layer-0 append; later layers of the step land on the copy.
        if (pool_.RefCount(page) > 1) {
            const int64_t clone = pool_.ClonePage(page);
            LLMNPU_CHECK_GE(clone, 0);  // callers gate on CanAppend
            pool_.Release(page);
            state.pages[static_cast<size_t>(page_idx)] = clone;
            page = clone;
        }
        std::memcpy(pool_.PageK(page, layer) + slot * kv_dim_,
                    pk + copied * kv_dim_,
                    static_cast<size_t>(run * kv_dim_) * sizeof(float));
        std::memcpy(pool_.PageV(page, layer) + slot * kv_dim_,
                    pv + copied * kv_dim_,
                    static_cast<size_t>(run * kv_dim_) * sizeof(float));
        copied += run;
    }
    state.layer_len[static_cast<size_t>(layer)] = len + row_count;

    // Layer-lockstep invariant (same as the single-sequence KvCache): no
    // layer may lead the shortest layer by more than the in-flight chunk,
    // and a later layer never leads layer 0.
    int64_t min_len = state.layer_len[0], max_len = min_len;
    for (int l = 1; l < num_layers_; ++l) {
        const int64_t llen = state.layer_len[static_cast<size_t>(l)];
        min_len = std::min(min_len, llen);
        max_len = std::max(max_len, llen);
    }
    LLMNPU_CHECK_LE(max_len - min_len, row_count);
    if (layer > 0) {
        LLMNPU_CHECK_LE(state.layer_len[static_cast<size_t>(layer)],
                        state.layer_len[0]);
    }
}

void
BatchedKvCache::Append(int seq, int layer, const Tensor& k, const Tensor& v)
{
    AppendRows(seq, layer, k, v, 0, k.Rows());
}

Tensor
BatchedKvCache::Keys(int seq, int layer) const
{
    const SeqState& state = CheckedSeq(seq);
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, num_layers_);
    const int64_t len = state.layer_len[static_cast<size_t>(layer)];
    const int64_t ps = page_size();
    Tensor out({len, kv_dim_}, DType::kF32);
    float* p = out.Data<float>();
    for (int64_t pos = 0; pos < len;) {
        const int64_t run = std::min(len - pos, ps - pos % ps);
        const int64_t page = state.pages[static_cast<size_t>(pos / ps)];
        std::memcpy(p + pos * kv_dim_,
                    pool_.PageK(page, layer) + (pos % ps) * kv_dim_,
                    static_cast<size_t>(run * kv_dim_) * sizeof(float));
        pos += run;
    }
    return out;
}

Tensor
BatchedKvCache::Values(int seq, int layer) const
{
    const SeqState& state = CheckedSeq(seq);
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, num_layers_);
    const int64_t len = state.layer_len[static_cast<size_t>(layer)];
    const int64_t ps = page_size();
    Tensor out({len, kv_dim_}, DType::kF32);
    float* p = out.Data<float>();
    for (int64_t pos = 0; pos < len;) {
        const int64_t run = std::min(len - pos, ps - pos % ps);
        const int64_t page = state.pages[static_cast<size_t>(pos / ps)];
        std::memcpy(p + pos * kv_dim_,
                    pool_.PageV(page, layer) + (pos % ps) * kv_dim_,
                    static_cast<size_t>(run * kv_dim_) * sizeof(float));
        pos += run;
    }
    return out;
}

int64_t
BatchedKvCache::SeqLen(int seq) const
{
    return SeqLen(seq, 0);
}

int64_t
BatchedKvCache::SeqLen(int seq, int layer) const
{
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, num_layers_);
    return CheckedSeq(seq).layer_len[static_cast<size_t>(layer)];
}

const std::vector<int64_t>&
BatchedKvCache::PageTable(int seq) const
{
    return CheckedSeq(seq).pages;
}

}  // namespace llmnpu
