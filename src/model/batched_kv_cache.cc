#include "src/model/batched_kv_cache.h"

#include "src/util/check.h"

namespace llmnpu {

BatchedKvCache::BatchedKvCache(int num_layers, int64_t kv_dim,
                               int num_sequences)
    : num_layers_(num_layers), kv_dim_(kv_dim)
{
    LLMNPU_CHECK_GT(num_layers, 0);
    LLMNPU_CHECK_GT(kv_dim, 0);
    LLMNPU_CHECK_GE(num_sequences, 0);
    seqs_.reserve(static_cast<size_t>(num_sequences));
    for (int i = 0; i < num_sequences; ++i) AddSequence();
}

int
BatchedKvCache::AddSequence()
{
    seqs_.emplace_back(num_layers_, kv_dim_);
    return static_cast<int>(seqs_.size()) - 1;
}

KvCache&
BatchedKvCache::Sequence(int seq)
{
    LLMNPU_CHECK_GE(seq, 0);
    LLMNPU_CHECK_LT(seq, num_sequences());
    return seqs_[static_cast<size_t>(seq)];
}

const KvCache&
BatchedKvCache::Sequence(int seq) const
{
    LLMNPU_CHECK_GE(seq, 0);
    LLMNPU_CHECK_LT(seq, num_sequences());
    return seqs_[static_cast<size_t>(seq)];
}

int64_t
BatchedKvCache::SizeBytes() const
{
    int64_t total = 0;
    for (const KvCache& cache : seqs_) total += cache.SizeBytes();
    return total;
}

}  // namespace llmnpu
