#include "src/model/transformer.h"

#include <cstring>

#include "src/model/decode_backend.h"
#include "src/model/paged_attention.h"
#include "src/obs/trace.h"
#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"

namespace llmnpu {

namespace {

/** Stable trace-span name per linear kind (string literals: the tracer
 *  stores the pointer, not a copy). */
[[maybe_unused]] const char*
LinearSpanName(LinearKind kind)
{
    switch (kind) {
        case LinearKind::kWq: return "linear.wq";
        case LinearKind::kWk: return "linear.wk";
        case LinearKind::kWv: return "linear.wv";
        case LinearKind::kWo: return "linear.wo";
        case LinearKind::kFfnGate: return "linear.ffn_gate";
        case LinearKind::kFfnUp: return "linear.ffn_up";
        case LinearKind::kFfnDown: return "linear.ffn_down";
        default: return "linear.unknown";
    }
}

}  // namespace

void
CheckBatchSegments(const Tensor& x, const BatchSegments& segments)
{
    LLMNPU_CHECK_GE(segments.size(), 2u);
    LLMNPU_CHECK_EQ(segments.front(), 0);
    LLMNPU_CHECK_EQ(segments.back(), x.Rows());
    for (size_t i = 1; i < segments.size(); ++i) {
        LLMNPU_CHECK_GT(segments[i], segments[i - 1]);
    }
}

Tensor
LinearExecutor::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                             const BatchSegments& segments)
{
    CheckBatchSegments(x, segments);
    // Reference path: each segment forwarded alone, outputs scattered back.
    // Bitwise identical to sequential execution by construction.
    Tensor out;
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
        const int64_t r0 = segments[i];
        const int64_t rows = segments[i + 1] - r0;
        Tensor y = Forward(layer, kind, x.CopyRows(r0, rows));
        if (out.Rank() == 0) {
            out = Tensor({x.Rows(), y.Cols()}, DType::kF32);
        }
        out.PasteRows(y, r0);
    }
    return out;
}

Tensor
Fp32LinearExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    // Packed panels are built once at load (ModelWeights::PackAllLinears),
    // so every forward hits the tiled kernel with zero packing cost.
    return MatMulF32Packed(x, weights_.PackedLinear(layer, kind));
}

Tensor
Fp32LinearExecutor::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                                 const BatchSegments& segments)
{
    // The tiled f32 kernel computes every output row with a fixed
    // K-ascending accumulation that does not depend on the other rows, so
    // the whole stack runs as one matmul.
    (void)segments;
    return MatMulF32Packed(x, weights_.PackedLinear(layer, kind));
}

Transformer::Transformer(const ModelWeights& weights) : weights_(weights)
{
    LLMNPU_CHECK_EQ(static_cast<int>(weights.layers.size()),
                    weights.config.num_layers);
}

KvCache
Transformer::MakeCache() const
{
    const auto& c = weights_.config;
    return KvCache(c.num_layers,
                   static_cast<int64_t>(c.num_kv_heads) * c.head_dim);
}

BatchedKvCache
Transformer::MakeBatchedCache(int num_sequences) const
{
    return MakeBatchedCache(num_sequences, PagedKvOptions{});
}

BatchedKvCache
Transformer::MakeBatchedCache(int num_sequences, PagedKvOptions options) const
{
    const auto& c = weights_.config;
    return BatchedKvCache(c.num_layers,
                          static_cast<int64_t>(c.num_kv_heads) * c.head_dim,
                          num_sequences, options);
}

Tensor
Transformer::Embed(const std::vector<int>& tokens) const
{
    const auto& c = weights_.config;
    Tensor out({static_cast<int64_t>(tokens.size()), c.hidden_size},
               DType::kF32);
    const float* emb = weights_.embedding.Data<float>();
    float* p = out.Data<float>();
    for (size_t i = 0; i < tokens.size(); ++i) {
        LLMNPU_CHECK_GE(tokens[i], 0);
        LLMNPU_CHECK_LT(tokens[i], c.vocab_size);
        std::memcpy(p + i * static_cast<size_t>(c.hidden_size),
                    emb + static_cast<int64_t>(tokens[i]) * c.hidden_size,
                    static_cast<size_t>(c.hidden_size) * sizeof(float));
    }
    return out;
}

Tensor
Transformer::Normed(const Tensor& x, const Tensor& gamma,
                    const Tensor& beta) const
{
    if (weights_.config.norm == NormKind::kRMSNorm) {
        return RMSNorm(x, gamma);
    }
    return LayerNorm(x, gamma, beta);
}

Tensor
Transformer::ForwardBlock(int layer, const Tensor& x, KvCache& cache,
                          int64_t pos_offset, LinearExecutor& linears) const
{
    const auto& c = weights_.config;
    const auto& lw = weights_.layers[static_cast<size_t>(layer)];
    LLMNPU_TRACE_SPAN_ID("transformer.block", "model", -1, -1, layer);
    // Span-per-linear: names the projection so a trace shows which linear
    // of which layer ran; does not touch the tensors.
    auto traced = [&](LinearKind kind, const Tensor& in) {
        LLMNPU_TRACE_SPAN_ID(LinearSpanName(kind), "linear", -1, -1, layer);
        return linears.Forward(layer, kind, in);
    };

    // --- Attention sub-block (pre-norm residual). ---
    Tensor normed = Normed(x, lw.attn_norm_gamma, lw.attn_norm_beta);
    Tensor q = traced(LinearKind::kWq, normed);
    Tensor k = traced(LinearKind::kWk, normed);
    Tensor v = traced(LinearKind::kWv, normed);

    ApplyRope(q, c.num_heads, c.head_dim, pos_offset);
    ApplyRope(k, c.num_kv_heads, c.head_dim, pos_offset);
    cache.Append(layer, k, v);

    Tensor keys = cache.Keys(layer);
    Tensor values = cache.Values(layer);
    Tensor attn = CausalAttention(q, keys, values, c.num_heads,
                                  c.num_kv_heads, pos_offset);
    Tensor attn_out = traced(LinearKind::kWo, attn);
    Tensor h = Add(x, attn_out);

    // --- FFN sub-block. ---
    Tensor ffn_in = Normed(h, lw.ffn_norm_gamma, lw.ffn_norm_beta);
    Tensor up = traced(LinearKind::kFfnUp, ffn_in);
    if (c.gated_ffn) {
        Tensor gate = traced(LinearKind::kFfnGate, ffn_in);
        if (c.act == ActKind::kSiLU) {
            SiluInPlace(gate);
        } else {
            GeluInPlace(gate);
        }
        up = Mul(gate, up);
    } else {
        if (c.act == ActKind::kSiLU) {
            SiluInPlace(up);
        } else {
            GeluInPlace(up);
        }
    }
    Tensor down = traced(LinearKind::kFfnDown, up);
    AddInPlace(h, down);
    return h;
}

Tensor
Transformer::ForwardBlockBatch(int layer, const Tensor& x,
                               const std::vector<BatchSeq>& batch,
                               const BatchSegments& segments,
                               const std::vector<int64_t>& pos_offsets,
                               BatchedKvCache& cache,
                               LinearExecutor& linears) const
{
    const auto& c = weights_.config;
    const auto& lw = weights_.layers[static_cast<size_t>(layer)];
    const size_t b = batch.size();
    LLMNPU_TRACE_SPAN_TILE("transformer.block_batch", "model", -1, -1,
                           layer, "batch", static_cast<int>(b));
    auto traced = [&](LinearKind kind, const Tensor& in) {
        LLMNPU_TRACE_SPAN_ID(LinearSpanName(kind), "linear", -1, -1, layer);
        return linears.ForwardBatch(layer, kind, in, segments);
    };

    // --- Attention sub-block. Norms are row-wise and the QKV projections
    // run as stacked matmuls; RoPE and the cache appends are per-sequence
    // (own position offset, own page table) but write in place on the
    // stacked tensors, and attention is one fused tile-parallel kernel
    // reading K/V straight out of the pool pages.
    Tensor normed = Normed(x, lw.attn_norm_gamma, lw.attn_norm_beta);
    Tensor q = traced(LinearKind::kWq, normed);
    Tensor k = traced(LinearKind::kWk, normed);
    Tensor v = traced(LinearKind::kWv, normed);

    std::vector<int> seqs(b, 0);
    for (size_t i = 0; i < b; ++i) {
        const int64_t r0 = segments[i];
        const int64_t rows = segments[i + 1] - r0;
        const int64_t pos = pos_offsets[i];
        ApplyRopeRows(q, r0, rows, c.num_heads, c.head_dim, pos);
        ApplyRopeRows(k, r0, rows, c.num_kv_heads, c.head_dim, pos);
        cache.AppendRows(batch[i].seq, layer, k, v, r0, rows);
        seqs[i] = batch[i].seq;
    }
    Tensor attn = PagedCausalAttention(q, segments, seqs, pos_offsets, cache,
                                       layer, c.num_heads, c.num_kv_heads);
    Tensor attn_out = traced(LinearKind::kWo, attn);
    Tensor h = Add(x, attn_out);

    // --- FFN sub-block: everything is row-wise or a stacked matmul.
    Tensor ffn_in = Normed(h, lw.ffn_norm_gamma, lw.ffn_norm_beta);
    Tensor up = traced(LinearKind::kFfnUp, ffn_in);
    if (c.gated_ffn) {
        Tensor gate = traced(LinearKind::kFfnGate, ffn_in);
        if (c.act == ActKind::kSiLU) {
            SiluInPlace(gate);
        } else {
            GeluInPlace(gate);
        }
        up = Mul(gate, up);
    } else {
        if (c.act == ActKind::kSiLU) {
            SiluInPlace(up);
        } else {
            GeluInPlace(up);
        }
    }
    Tensor down = traced(LinearKind::kFfnDown, up);
    AddInPlace(h, down);
    return h;
}

Tensor
Transformer::ForwardBatch(const std::vector<BatchSeq>& batch,
                          BatchedKvCache& cache,
                          LinearExecutor& linears) const
{
    LLMNPU_CHECK(!batch.empty());
    const size_t b = batch.size();

    // Segment boundaries of the stacked activation, per-sequence position
    // offsets (captured before any append), and the stacked embedding.
    BatchSegments segments(b + 1, 0);
    std::vector<int64_t> pos_offsets(b, 0);
    std::vector<int> stacked_tokens;
    for (size_t i = 0; i < b; ++i) {
        LLMNPU_CHECK(!batch[i].tokens.empty());
        for (size_t j = 0; j < i; ++j) {
            LLMNPU_CHECK_NE(batch[j].seq, batch[i].seq);
        }
        segments[i + 1] =
            segments[i] + static_cast<int64_t>(batch[i].tokens.size());
        pos_offsets[i] = cache.SeqLen(batch[i].seq);
        stacked_tokens.insert(stacked_tokens.end(), batch[i].tokens.begin(),
                              batch[i].tokens.end());
    }

    LLMNPU_TRACE_SPAN_TILE("transformer.forward_batch", "model", -1, -1,
                           -1, "rows", static_cast<int>(segments.back()));
    Tensor x = Embed(stacked_tokens);
    for (int l = 0; l < weights_.config.num_layers; ++l) {
        x = ForwardBlockBatch(l, x, batch, segments, pos_offsets, cache,
                              linears);
    }
    return Normed(x, weights_.final_norm_gamma, weights_.final_norm_beta);
}

Tensor
Transformer::ForwardBatchPlaced(const std::vector<BatchSeq>& batch,
                                const std::vector<DecodePlacement>& placements,
                                BatchedKvCache& cache,
                                DecodeBackend& backend) const
{
    LLMNPU_CHECK_EQ(placements.size(), batch.size());
    backend.SetStepPlacements(placements);
    return ForwardBatch(batch, cache, backend);
}

Tensor
Transformer::Forward(const std::vector<int>& tokens, KvCache& cache,
                     LinearExecutor& linears) const
{
    LLMNPU_CHECK(!tokens.empty());
    const int64_t pos_offset = cache.SeqLen();
    LLMNPU_TRACE_SPAN_TILE("transformer.forward", "model", -1, -1, -1,
                           "rows", static_cast<int>(tokens.size()));
    Tensor x = Embed(tokens);
    for (int l = 0; l < weights_.config.num_layers; ++l) {
        x = ForwardBlock(l, x, cache, pos_offset, linears);
    }
    return Normed(x, weights_.final_norm_gamma, weights_.final_norm_beta);
}

Tensor
Transformer::Logits(const Tensor& hidden) const
{
    // Tied embedding: logits = hidden @ embedding^T, via the packed
    // transposed embedding built at load.
    return MatMulF32Packed(hidden, weights_.PackedLmHead());
}

int
Transformer::ArgmaxLastRow(const Tensor& logits) const
{
    const int64_t rows = logits.Rows(), cols = logits.Cols();
    const float* p = logits.Data<float>() + (rows - 1) * cols;
    int best = 0;
    for (int64_t t = 1; t < cols; ++t) {
        if (p[t] > p[best]) best = static_cast<int>(t);
    }
    return best;
}

std::vector<int>
Transformer::Generate(const std::vector<int>& prompt, int max_new_tokens,
                      LinearExecutor& linears) const
{
    KvCache cache = MakeCache();
    Tensor hidden = Forward(prompt, cache, linears);
    Tensor logits = Logits(hidden.CopyRows(hidden.Rows() - 1, 1));
    std::vector<int> generated;
    int next = ArgmaxLastRow(logits);
    generated.push_back(next);
    for (int i = 1; i < max_new_tokens; ++i) {
        Tensor h = Forward({next}, cache, linears);
        logits = Logits(h);
        next = ArgmaxLastRow(logits);
        generated.push_back(next);
    }
    return generated;
}

}  // namespace llmnpu
