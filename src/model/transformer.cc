#include "src/model/transformer.h"

#include <cstring>

#include "src/tensor/matmul.h"
#include "src/tensor/ops.h"

namespace llmnpu {

Tensor
Fp32LinearExecutor::Forward(int layer, LinearKind kind, const Tensor& x)
{
    // Packed panels are built once at load (ModelWeights::PackAllLinears),
    // so every forward hits the tiled kernel with zero packing cost.
    return MatMulF32Packed(x, weights_.PackedLinear(layer, kind));
}

Transformer::Transformer(const ModelWeights& weights) : weights_(weights)
{
    LLMNPU_CHECK_EQ(static_cast<int>(weights.layers.size()),
                    weights.config.num_layers);
}

KvCache
Transformer::MakeCache() const
{
    const auto& c = weights_.config;
    return KvCache(c.num_layers,
                   static_cast<int64_t>(c.num_kv_heads) * c.head_dim);
}

Tensor
Transformer::Embed(const std::vector<int>& tokens) const
{
    const auto& c = weights_.config;
    Tensor out({static_cast<int64_t>(tokens.size()), c.hidden_size},
               DType::kF32);
    const float* emb = weights_.embedding.Data<float>();
    float* p = out.Data<float>();
    for (size_t i = 0; i < tokens.size(); ++i) {
        LLMNPU_CHECK_GE(tokens[i], 0);
        LLMNPU_CHECK_LT(tokens[i], c.vocab_size);
        std::memcpy(p + i * static_cast<size_t>(c.hidden_size),
                    emb + static_cast<int64_t>(tokens[i]) * c.hidden_size,
                    static_cast<size_t>(c.hidden_size) * sizeof(float));
    }
    return out;
}

Tensor
Transformer::Normed(const Tensor& x, const Tensor& gamma,
                    const Tensor& beta) const
{
    if (weights_.config.norm == NormKind::kRMSNorm) {
        return RMSNorm(x, gamma);
    }
    return LayerNorm(x, gamma, beta);
}

Tensor
Transformer::ForwardBlock(int layer, const Tensor& x, KvCache& cache,
                          int64_t pos_offset, LinearExecutor& linears) const
{
    const auto& c = weights_.config;
    const auto& lw = weights_.layers[static_cast<size_t>(layer)];

    // --- Attention sub-block (pre-norm residual). ---
    Tensor normed = Normed(x, lw.attn_norm_gamma, lw.attn_norm_beta);
    Tensor q = linears.Forward(layer, LinearKind::kWq, normed);
    Tensor k = linears.Forward(layer, LinearKind::kWk, normed);
    Tensor v = linears.Forward(layer, LinearKind::kWv, normed);

    ApplyRope(q, c.num_heads, c.head_dim, pos_offset);
    ApplyRope(k, c.num_kv_heads, c.head_dim, pos_offset);
    cache.Append(layer, k, v);

    Tensor keys = cache.Keys(layer);
    Tensor values = cache.Values(layer);
    Tensor attn = CausalAttention(q, keys, values, c.num_heads,
                                  c.num_kv_heads, pos_offset);
    Tensor attn_out = linears.Forward(layer, LinearKind::kWo, attn);
    Tensor h = Add(x, attn_out);

    // --- FFN sub-block. ---
    Tensor ffn_in = Normed(h, lw.ffn_norm_gamma, lw.ffn_norm_beta);
    Tensor up = linears.Forward(layer, LinearKind::kFfnUp, ffn_in);
    if (c.gated_ffn) {
        Tensor gate = linears.Forward(layer, LinearKind::kFfnGate, ffn_in);
        if (c.act == ActKind::kSiLU) {
            SiluInPlace(gate);
        } else {
            GeluInPlace(gate);
        }
        up = Mul(gate, up);
    } else {
        if (c.act == ActKind::kSiLU) {
            SiluInPlace(up);
        } else {
            GeluInPlace(up);
        }
    }
    Tensor down = linears.Forward(layer, LinearKind::kFfnDown, up);
    AddInPlace(h, down);
    return h;
}

Tensor
Transformer::Forward(const std::vector<int>& tokens, KvCache& cache,
                     LinearExecutor& linears) const
{
    LLMNPU_CHECK(!tokens.empty());
    const int64_t pos_offset = cache.SeqLen();
    Tensor x = Embed(tokens);
    for (int l = 0; l < weights_.config.num_layers; ++l) {
        x = ForwardBlock(l, x, cache, pos_offset, linears);
    }
    return Normed(x, weights_.final_norm_gamma, weights_.final_norm_beta);
}

Tensor
Transformer::Logits(const Tensor& hidden) const
{
    // Tied embedding: logits = hidden @ embedding^T, via the packed
    // transposed embedding built at load.
    return MatMulF32Packed(hidden, weights_.PackedLmHead());
}

int
Transformer::ArgmaxLastRow(const Tensor& logits) const
{
    const int64_t rows = logits.Rows(), cols = logits.Cols();
    const float* p = logits.Data<float>() + (rows - 1) * cols;
    int best = 0;
    for (int64_t t = 1; t < cols; ++t) {
        if (p[t] > p[best]) best = static_cast<int>(t);
    }
    return best;
}

std::vector<int>
Transformer::Generate(const std::vector<int>& prompt, int max_new_tokens,
                      LinearExecutor& linears) const
{
    KvCache cache = MakeCache();
    Tensor hidden = Forward(prompt, cache, linears);
    Tensor logits = Logits(hidden.CopyRows(hidden.Rows() - 1, 1));
    std::vector<int> generated;
    int next = ArgmaxLastRow(logits);
    generated.push_back(next);
    for (int i = 1; i < max_new_tokens; ++i) {
        Tensor h = Forward({next}, cache, linears);
        logits = Logits(h);
        next = ArgmaxLastRow(logits);
        generated.push_back(next);
    }
    return generated;
}

}  // namespace llmnpu
