/**
 * @file
 * Decode placement routing: which processor executes a step's linears.
 *
 * The paper runs prefill on the NPU and keeps decode on the CPU/GPU float
 * processor (§4.6). This module makes that a per-step, per-sequence choice:
 * a DecodeBackend wraps two LinearExecutors — the CPU float path (packed
 * fp32 matmuls) and the NPU quantized path (the W8A8 shadow executor:
 * static-clip-scale INT8 activations, static per-column INT8 weights, the
 * shadow outlier term per sequence) — and routes every linear of the
 * current step to one of them based on a placement per batch segment.
 *
 * The CPU/NPU handoff boundary is explicit: attention, RoPE, norms,
 * residuals and the lm-head always stay on the CPU float path (the
 * Transformer computes them outside the LinearExecutor), while a linear
 * routed to the NPU quantizes its f32 activations to INT8 on entry and
 * dequantizes the INT32 accumulators on exit — both real tensor ops inside
 * the shadow executor (x_q materialization, per-column scale multiply).
 * HandoffStats counts those boundary crossings so the timing plane's
 * handoff charges can be checked against what the numeric plane executed.
 */
#ifndef LLMNPU_MODEL_DECODE_BACKEND_H
#define LLMNPU_MODEL_DECODE_BACKEND_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/placement.h"
#include "src/model/transformer.h"

namespace llmnpu {

/** Boundary-crossing counters of the CPU/NPU handoff (per linear routed to
 *  the NPU: one f32->int8 quantize of the inputs, one accumulator
 *  dequantize of the outputs, one round trip). Backed by the process-wide
 *  obs::MetricsRegistry ("handoff.*" counters); DecodeBackend::stats()
 *  reads them relative to the last ResetStats() snapshot. */
struct HandoffStats {
    int64_t npu_linear_calls = 0;  ///< per-segment linears routed to the NPU
    int64_t cpu_linear_calls = 0;  ///< per-segment linears kept on the CPU
    int64_t handoffs = 0;          ///< CPU->NPU->CPU round trips (per run)
    int64_t quantized_elems = 0;   ///< f32 activations crossing into INT8
    int64_t dequantized_elems = 0; ///< accumulator outputs crossing back
};

/**
 * Routes each linear of a forward step to the CPU float path or the NPU
 * quantized path, per batch segment.
 *
 * The backend is itself a LinearExecutor, so Transformer::Forward /
 * ForwardBatch run through it unchanged; callers set the placement state
 * before each step (SetUniformPlacement for whole-step routing,
 * SetStepPlacements for per-sequence routing inside one batched step).
 *
 * Bitwise contract: a segment routed to placement P produces rows bitwise
 * identical to forwarding that segment alone through P's executor — mixed
 * batches split into contiguous same-placement runs, and both underlying
 * executors honor the ForwardBatch per-segment contract. Verified by
 * tests/decode_npu_test.cc.
 */
class DecodeBackend : public LinearExecutor
{
  public:
    /** @param cpu_float the float path (typically Fp32LinearExecutor);
     *  @param npu_quant the quantized path (typically NpuShadowExecutor). */
    DecodeBackend(LinearExecutor& cpu_float, LinearExecutor& npu_quant);

    /** Routes every segment of subsequent steps to `placement`. */
    void SetUniformPlacement(DecodePlacement placement);

    /**
     * Per-segment routing for the next ForwardBatch call(s): segment i of
     * the stacked activation executes on `placements[i]`. Size must match
     * the batch handed to ForwardBatch (checked there); Forward uses
     * placements[0].
     */
    void SetStepPlacements(std::vector<DecodePlacement> placements);

    Tensor Forward(int layer, LinearKind kind, const Tensor& x) override;
    Tensor ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                        const BatchSegments& segments) override;
    std::string Name() const override;

    /** Handoff counters accumulated since construction / last ResetStats().
     *  Reads the registry's "handoff.*" counters minus the snapshot, so a
     *  single live backend sees exactly its own traffic. */
    HandoffStats stats() const;
    /** Re-bases stats() at the registry's current totals. */
    void ResetStats();

    /** The placement segment i of the current step routes to. */
    DecodePlacement PlacementFor(size_t segment) const;

  private:
    LinearExecutor& cpu_float_;
    LinearExecutor& npu_quant_;
    DecodePlacement uniform_ = DecodePlacement::kCpuFloat;
    std::vector<DecodePlacement> step_placements_;  ///< empty => uniform_
    HandoffStats base_;  ///< registry totals at construction / ResetStats
};

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_DECODE_BACKEND_H
