/**
 * @file
 * Shared page pool for KV-cache storage.
 *
 * Dense per-sequence KV storage makes memory the invisible resource: every
 * sequence reserves its worst case and the serving layer can only count
 * bytes after the fact. The pool makes memory page-granular and explicit —
 * fixed-size pages (a run of token positions, all layers, K and V) handed
 * out from one free list, returned on sequence retirement, and shareable
 * across sequences for common prompt prefixes (refcounted). This is the
 * allocation substrate under BatchedKvCache; the serving simulator models
 * the same page arithmetic so admission control and preemption-by-eviction
 * rehearse against an honest memory budget.
 *
 * Layout: one contiguous buffer per physical page holding
 * [layer][k|v][page_size x kv_dim] so a page is the unit of both
 * allocation and locality. Page ids are stable for the pool's lifetime;
 * released pages are recycled LIFO (the hottest page comes back first).
 */
#ifndef LLMNPU_MODEL_KV_PAGE_POOL_H
#define LLMNPU_MODEL_KV_PAGE_POOL_H

#include <cstdint>
#include <limits>
#include <vector>

#include "src/util/check.h"

namespace llmnpu {

/** free_pages() of an unbounded pool: headroom is limited by host memory,
 *  not the pool, so consumers comparing demand against it always fit. */
constexpr int64_t kUnboundedFreePages = std::numeric_limits<int64_t>::max();

/** Geometry and budget of a paged KV allocation. */
struct PagedKvOptions {
    /** Token positions per page. 16 keeps page tables short for mobile
     *  context lengths while wasting at most 15 positions per sequence. */
    int64_t page_size = 16;
    /** Total pages the pool may hand out; 0 = grow on demand (no budget,
     *  the legacy dense behavior's memory envelope). */
    int64_t max_pages = 0;
};

/** Fixed-geometry pool of refcounted KV pages. */
class KvPagePool
{
  public:
    KvPagePool(int num_layers, int64_t kv_dim, PagedKvOptions options);

    /**
     * Hands out a page (refcount 1), recycling released pages LIFO before
     * allocating new storage. @return page id, or -1 when a bounded pool
     * (max_pages > 0) is exhausted — callers turn that into admission
     * rejection or eviction, never into silent growth.
     */
    int64_t AllocPage();

    /**
     * Allocates a fresh page and copies `src`'s whole buffer (every layer,
     * K and V) into it — the copy-on-write step of a shared-page write.
     * `src` keeps its references; the clone comes back with refcount 1.
     * @return the clone's page id, or -1 when a bounded pool is exhausted.
     */
    int64_t ClonePage(int64_t src);

    /** Adds a reference to a live page (prefix sharing). */
    void AddRef(int64_t page);

    /** Drops one reference; the page returns to the free list at zero. */
    void Release(int64_t page);

    /** References currently held on `page` (0 = free). */
    int64_t RefCount(int64_t page) const;

    /** Mutable K block of one page/layer: [page_size x kv_dim] row-major. */
    float* PageK(int64_t page, int layer);
    const float* PageK(int64_t page, int layer) const;

    /** Mutable V block of one page/layer: [page_size x kv_dim] row-major. */
    float* PageV(int64_t page, int layer);
    const float* PageV(int64_t page, int layer) const;

    int num_layers() const { return num_layers_; }
    int64_t kv_dim() const { return kv_dim_; }
    int64_t page_size() const { return options_.page_size; }
    int64_t max_pages() const { return options_.max_pages; }

    /** Pages needed to hold `positions` token positions. */
    int64_t PagesFor(int64_t positions) const;

    /** Pages currently referenced by at least one sequence. */
    int64_t used_pages() const { return used_pages_; }

    /** Pages available right now: the free list plus (for a bounded pool)
     *  the unallocated remainder of the budget. An unbounded pool grows on
     *  demand, so it reports kUnboundedFreePages — reporting only the free
     *  list would understate headroom to CanAppend/PolicySignals consumers
     *  and spuriously backpressure an unlimited pool. */
    int64_t free_pages() const;

    /** Copy-on-write clones performed over the pool's lifetime. */
    int64_t cow_clones() const { return cow_clones_; }

    /** Physical pages ever allocated (the high-water mark). */
    int64_t allocated_pages() const
    {
        return static_cast<int64_t>(pages_.size());
    }

    /** Bytes of one page across all layers, K and V (f32). */
    int64_t PageBytes() const;

    /** Bytes of pages currently in use — the honest footprint the serving
     *  layer accounts against, page-granular by construction. */
    int64_t SizeBytes() const { return used_pages_ * PageBytes(); }

    /** Bytes of all pages ever allocated (capacity high-water mark). */
    int64_t CapacityBytes() const { return allocated_pages() * PageBytes(); }

  private:
    /** Floats in one page buffer: num_layers * 2 * page_size * kv_dim. */
    int64_t PageFloats() const;

    int num_layers_;
    int64_t kv_dim_;
    PagedKvOptions options_;
    std::vector<std::vector<float>> pages_;
    std::vector<int64_t> refcount_;
    std::vector<int64_t> free_list_;  ///< LIFO recycle order
    int64_t used_pages_ = 0;
    int64_t cow_clones_ = 0;
};

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_KV_PAGE_POOL_H
