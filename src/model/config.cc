#include "src/model/config.h"

#include "src/util/check.h"

namespace llmnpu {

std::string
LinearKindName(LinearKind kind)
{
    switch (kind) {
      case LinearKind::kWq: return "q_proj";
      case LinearKind::kWk: return "k_proj";
      case LinearKind::kWv: return "v_proj";
      case LinearKind::kWo: return "o_proj";
      case LinearKind::kFfnGate: return "gate_proj";
      case LinearKind::kFfnUp: return "up_proj";
      case LinearKind::kFfnDown: return "down_proj";
    }
    return "?";
}

void
ModelConfig::Validate() const
{
    LLMNPU_CHECK_GT(hidden_size, 0);
    LLMNPU_CHECK_GT(num_layers, 0);
    LLMNPU_CHECK_GT(num_heads, 0);
    LLMNPU_CHECK_GT(num_kv_heads, 0);
    LLMNPU_CHECK_GT(head_dim, 0);
    LLMNPU_CHECK_GT(ffn_hidden, 0);
    LLMNPU_CHECK_GT(vocab_size, 0);
    LLMNPU_CHECK_GT(max_context, 0);
    // head_dim must be the exact quotient — a truncating hidden/num_heads
    // would silently shrink every attention projection.
    LLMNPU_CHECK_EQ(hidden_size % num_heads, 0);
    LLMNPU_CHECK_EQ(static_cast<int64_t>(num_heads) * head_dim, hidden_size);
    LLMNPU_CHECK_EQ(head_dim % 2, 0);  // RoPE rotates (even, odd) pairs
    LLMNPU_CHECK_EQ(num_heads % num_kv_heads, 0);  // whole GQA groups
}

std::vector<LinearSpec>
ModelConfig::LayerLinears() const
{
    const int64_t q_dim = static_cast<int64_t>(num_heads) * head_dim;
    const int64_t kv_dim = static_cast<int64_t>(num_kv_heads) * head_dim;
    std::vector<LinearSpec> specs = {
        {LinearKind::kWq, hidden_size, q_dim},
        {LinearKind::kWk, hidden_size, kv_dim},
        {LinearKind::kWv, hidden_size, kv_dim},
        {LinearKind::kWo, q_dim, hidden_size},
    };
    if (gated_ffn) {
        specs.push_back({LinearKind::kFfnGate, hidden_size, ffn_hidden});
    }
    specs.push_back({LinearKind::kFfnUp, hidden_size, ffn_hidden});
    specs.push_back({LinearKind::kFfnDown, ffn_hidden, hidden_size});
    return specs;
}

int64_t
ModelConfig::LayerLinearParams() const
{
    int64_t total = 0;
    for (const auto& spec : LayerLinears()) total += spec.k * spec.n;
    return total;
}

int64_t
ModelConfig::MatMulParams() const
{
    return LayerLinearParams() * num_layers;
}

int64_t
ModelConfig::TotalParams() const
{
    // Embedding (lm_head tied) + per-layer norms + final norm.
    const int64_t norm_params =
        (norm == NormKind::kLayerNorm ? 2 : 1) * hidden_size;
    return MatMulParams() + vocab_size * hidden_size +
           (2 * num_layers + 1) * norm_params;
}

ModelConfig
Qwen15_1_8B()
{
    ModelConfig c;
    c.name = "Qwen1.5-1.8B";
    c.hidden_size = 2048;
    c.num_layers = 24;
    c.num_heads = 16;
    c.num_kv_heads = 16;
    c.head_dim = 128;
    c.ffn_hidden = 5504;
    c.vocab_size = 151936;
    c.max_context = 32768;
    c.norm = NormKind::kRMSNorm;
    c.act = ActKind::kSiLU;
    c.gated_ffn = true;
    return c;
}

ModelConfig
Gemma2B()
{
    ModelConfig c;
    c.name = "Gemma-2B";
    c.hidden_size = 2048;
    c.num_layers = 18;
    c.num_heads = 8;
    c.num_kv_heads = 1;
    c.head_dim = 256;
    c.ffn_hidden = 16384;
    c.vocab_size = 256000;
    c.max_context = 8192;
    c.norm = NormKind::kRMSNorm;
    c.act = ActKind::kGeLU;
    c.gated_ffn = true;
    return c;
}

ModelConfig
Phi2_2_7B()
{
    ModelConfig c;
    c.name = "Phi-2-2.7B";
    c.hidden_size = 2560;
    c.num_layers = 32;
    c.num_heads = 32;
    c.num_kv_heads = 32;
    c.head_dim = 80;
    c.ffn_hidden = 10240;
    c.vocab_size = 51200;
    c.max_context = 2048;
    c.norm = NormKind::kLayerNorm;
    c.act = ActKind::kGeLU;
    c.gated_ffn = false;
    return c;
}

ModelConfig
Llama2_7B()
{
    ModelConfig c;
    c.name = "LlaMA-2-7B";
    c.hidden_size = 4096;
    c.num_layers = 32;
    c.num_heads = 32;
    c.num_kv_heads = 32;
    c.head_dim = 128;
    c.ffn_hidden = 11008;
    c.vocab_size = 32000;
    c.max_context = 4096;
    c.norm = NormKind::kRMSNorm;
    c.act = ActKind::kSiLU;
    c.gated_ffn = true;
    return c;
}

ModelConfig
Mistral7B()
{
    ModelConfig c;
    c.name = "Mistral-7B";
    c.hidden_size = 4096;
    c.num_layers = 32;
    c.num_heads = 32;
    c.num_kv_heads = 8;
    c.head_dim = 128;
    c.ffn_hidden = 14336;
    c.vocab_size = 32000;
    c.max_context = 32768;
    c.norm = NormKind::kRMSNorm;
    c.act = ActKind::kSiLU;
    c.gated_ffn = true;
    return c;
}

std::vector<ModelConfig>
PaperModels()
{
    return {Qwen15_1_8B(), Gemma2B(), Phi2_2_7B(), Llama2_7B(), Mistral7B()};
}

ModelConfig
ModelByName(const std::string& name)
{
    for (const auto& c : PaperModels()) {
        if (c.name == name) return c;
    }
    LLMNPU_FATAL_IF(true, "unknown model: " + name);
}

ModelConfig
TinyTestConfig()
{
    ModelConfig c;
    c.name = "tiny-test";
    c.hidden_size = 64;
    c.num_layers = 2;
    c.num_heads = 4;
    c.num_kv_heads = 2;
    c.head_dim = 16;
    c.ffn_hidden = 128;
    c.vocab_size = 256;
    c.max_context = 512;
    c.norm = NormKind::kRMSNorm;
    c.act = ActKind::kSiLU;
    c.gated_ffn = true;
    return c;
}

ModelConfig
ScaledProxy(const ModelConfig& base, int64_t hidden, int num_layers,
            int64_t vocab)
{
    LLMNPU_CHECK_GT(hidden, 0);
    ModelConfig c = base;
    c.name = base.name + "-proxy";
    const double ffn_ratio = static_cast<double>(base.ffn_hidden) /
                             static_cast<double>(base.hidden_size);
    c.hidden_size = hidden;
    c.num_layers = num_layers;
    // Preserve the MHA/GQA/MQA ratio with a reduced head count.
    const int group = base.num_heads / base.num_kv_heads;
    c.num_heads = 4 * group;
    c.num_kv_heads = 4;
    while (hidden % c.num_heads != 0 && c.num_heads > group) {
        c.num_heads -= group;
        c.num_kv_heads -= 1;
    }
    LLMNPU_CHECK_EQ(hidden % c.num_heads, 0);
    c.head_dim = static_cast<int>(hidden / c.num_heads);
    c.ffn_hidden = static_cast<int64_t>(ffn_ratio * static_cast<double>(hidden));
    // Round FFN width to a multiple of 32 so per-group quantizers apply.
    c.ffn_hidden = (c.ffn_hidden + 31) / 32 * 32;
    c.vocab_size = vocab;
    c.max_context = 2048;
    c.Validate();
    return c;
}

}  // namespace llmnpu
