#include "src/model/weights.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"

namespace llmnpu {

namespace {

/** Gaussian matrix with std 1/sqrt(k) so y = x @ W keeps unit variance. */
Tensor
RandomLinear(Rng& rng, int64_t k, int64_t n)
{
    Tensor w({k, n}, DType::kF32);
    float* p = w.Data<float>();
    const double std = 1.0 / std::sqrt(static_cast<double>(k));
    for (int64_t i = 0; i < w.NumElements(); ++i) {
        p[i] = static_cast<float>(rng.Normal(0.0, std));
    }
    return w;
}

Tensor
OnesWithJitter(Rng& rng, int64_t n)
{
    Tensor t({1, n}, DType::kF32);
    float* p = t.Data<float>();
    for (int64_t i = 0; i < n; ++i) {
        p[i] = static_cast<float>(1.0 + rng.Normal(0.0, 0.02));
    }
    return t;
}

}  // namespace

namespace {

/** Dense index of a LinearKind (enum declaration order). */
size_t
KindSlot(LinearKind kind)
{
    const auto slot = static_cast<size_t>(kind);
    LLMNPU_CHECK_LT(slot, static_cast<size_t>(kNumLinearKinds));
    return slot;
}

}  // namespace

const Tensor&
ModelWeights::Linear(int layer, LinearKind kind) const
{
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, static_cast<int>(layers.size()));
    const LayerWeights& lw = layers[static_cast<size_t>(layer)];
    switch (kind) {
      case LinearKind::kWq: return lw.wq;
      case LinearKind::kWk: return lw.wk;
      case LinearKind::kWv: return lw.wv;
      case LinearKind::kWo: return lw.wo;
      case LinearKind::kFfnGate:
        LLMNPU_CHECK(config.gated_ffn);
        return lw.w_gate;
      case LinearKind::kFfnUp: return lw.w_up;
      case LinearKind::kFfnDown: return lw.w_down;
    }
    LLMNPU_CHECK(false);
    return lw.wq;
}

Tensor&
ModelWeights::MutableLinear(int layer, LinearKind kind)
{
    // The caller may mutate the weights; drop the stale packed panels so
    // PackedLinear() re-packs on next use.
    if (static_cast<size_t>(layer) < packed_linears_.size()) {
        packed_linears_[static_cast<size_t>(layer)][KindSlot(kind)] =
            PackedWeightsF32{};
    }
    return const_cast<Tensor&>(Linear(layer, kind));
}

const PackedWeightsF32&
ModelWeights::PackedLinear(int layer, LinearKind kind) const
{
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, static_cast<int>(layers.size()));
    if (packed_linears_.size() != layers.size()) {
        packed_linears_.assign(
            layers.size(),
            std::vector<PackedWeightsF32>(kNumLinearKinds));
    }
    PackedWeightsF32& entry =
        packed_linears_[static_cast<size_t>(layer)][KindSlot(kind)];
    if (entry.Empty()) entry = PackWeightsF32(Linear(layer, kind));
    return entry;
}

const PackedWeightsF32&
ModelWeights::PackedLmHead() const
{
    if (packed_lm_head_.Empty()) {
        packed_lm_head_ = PackWeightsF32Transposed(embedding);
    }
    return packed_lm_head_;
}

void
ModelWeights::PackAllLinears()
{
    for (int l = 0; l < static_cast<int>(layers.size()); ++l) {
        for (const auto& spec : config.LayerLinears()) {
            PackedLinear(l, spec.kind);
        }
    }
    PackedLmHead();
}

ModelWeights
GenerateSyntheticWeights(const ModelConfig& config,
                         const SyntheticWeightsOptions& opts)
{
    config.Validate();  // fail loudly before any tensor gets a shape
    Rng rng(opts.seed);
    ModelWeights mw;
    mw.config = config;

    const int64_t hidden = config.hidden_size;
    const int64_t vocab = config.vocab_size;

    // Pick the hot channels that will carry activation outliers (Figure 11:
    // <3% of channels contribute >80% of outliers).
    const int num_hot = std::max<int>(
        2, static_cast<int>(std::lround(opts.hot_channel_frac *
                                        static_cast<double>(hidden))));
    std::vector<int> all(static_cast<size_t>(hidden));
    for (int64_t i = 0; i < hidden; ++i) {
        all[static_cast<size_t>(i)] = static_cast<int>(i);
    }
    for (int i = 0; i < num_hot; ++i) {
        const auto j = static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(hidden - i))) +
            static_cast<size_t>(i);
        std::swap(all[static_cast<size_t>(i)], all[j]);
    }
    mw.hot_channels.assign(all.begin(), all.begin() + num_hot);
    std::sort(mw.hot_channels.begin(), mw.hot_channels.end());

    // Embedding rows are unit Gaussian; hot channels get a token-dependent
    // boost so outliers appear/disappear with the prompt content.
    mw.embedding = Tensor({vocab, hidden}, DType::kF32);
    {
        float* p = mw.embedding.Data<float>();
        for (int64_t i = 0; i < mw.embedding.NumElements(); ++i) {
            p[i] = static_cast<float>(rng.Normal());
        }
        for (int hot : mw.hot_channels) {
            for (int64_t t = 0; t < vocab; ++t) {
                if (rng.Bernoulli(opts.token_activation_prob)) {
                    p[t * hidden + hot] *=
                        static_cast<float>(2.5 * std::exp(rng.Normal(0, 0.3)));
                }
            }
        }
    }

    // Outlier injection happens in the norm gains: norms run in float in
    // every quantization pipeline (Table 4), so amplified gains create
    // *activation* outliers at the quantized linears' inputs while all
    // weight matrices stay benign Gaussian — mirroring real LLMs, where
    // activation outliers (not weight outliers) are the quantization
    // obstacle [33, 84].
    //
    // The amplification follows the paper's importance profile (Figure 12):
    // importance spikes at a small subset of linears — concentrated near the
    // network's inputs and outputs and sparse within a layer — while most
    // linears' outliers barely exceed the quantization scale. That sparsity
    // is why pruning the ~85% least important linears is nearly free (§3.3).
    constexpr double kMildStrength = 0.035;
    auto layer_strength = [&](int layer) {
        const int from_end = std::min(layer, config.num_layers - 1 - layer);
        const double decay = std::exp(
            -static_cast<double>(from_end) /
            std::max(0.35, static_cast<double>(config.num_layers) / 16.0));
        return kMildStrength + (1.0 - kMildStrength) * decay;
    };
    // Alternate the strong side per layer: even layers spike the attention
    // input (q/k/v), odd layers the FFN input (gate/up).
    auto attn_strength = [&](int layer) {
        return layer % 2 == 0 ? layer_strength(layer) : kMildStrength;
    };
    auto ffn_strength = [&](int layer) {
        return layer % 2 == 1 ? layer_strength(layer) : kMildStrength;
    };
    auto amplify_hot = [&](Tensor& gamma, double strength) {
        float* p = gamma.Data<float>();
        for (int hot : mw.hot_channels) {
            p[hot] *= static_cast<float>(strength * opts.outlier_amplitude *
                                         std::exp(rng.Normal(0.0, 0.35)));
        }
    };

    // Hot output columns of wv / w_up: the attention output (o_proj input)
    // and the FFN intermediate (down_proj input) then carry channel-
    // structured outliers too, matching Figure 10's per-operator counts.
    // Amplified *weight columns* are benign for weight quantization because
    // every int8 weight scheme here uses per-output-channel (or per-group)
    // scales; only the downstream *activation* quantization feels them.
    const int64_t kv_dim =
        static_cast<int64_t>(config.num_kv_heads) * config.head_dim;
    auto pick_channels = [&](int64_t dim, double frac) {
        const int count = std::max<int>(
            1, static_cast<int>(std::lround(frac * static_cast<double>(dim))));
        std::vector<int> chosen;
        for (int i = 0; i < count; ++i) {
            chosen.push_back(
                static_cast<int>(rng.UniformInt(static_cast<uint64_t>(dim))));
        }
        std::sort(chosen.begin(), chosen.end());
        chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
        return chosen;
    };
    mw.v_hot_channels = pick_channels(kv_dim, opts.hot_channel_frac * 0.7);
    mw.ffn_hot_channels =
        pick_channels(config.ffn_hidden, opts.hot_channel_frac * 0.3);

    auto amplify_columns = [&](Tensor& w, const std::vector<int>& cols,
                               double strength) {
        float* p = w.Data<float>();
        const int64_t n = w.Cols();
        for (int c : cols) {
            const float f = static_cast<float>(
                strength * opts.outlier_amplitude *
                std::exp(rng.Normal(0.0, 0.3)));
            for (int64_t r = 0; r < w.Rows(); ++r) p[r * n + c] *= f;
        }
    };

    for (int l = 0; l < config.num_layers; ++l) {
        LayerWeights lw;
        lw.attn_norm_gamma = OnesWithJitter(rng, hidden);
        lw.attn_norm_beta = Tensor::Zeros({1, hidden});
        lw.ffn_norm_gamma = OnesWithJitter(rng, hidden);
        lw.ffn_norm_beta = Tensor::Zeros({1, hidden});
        amplify_hot(lw.attn_norm_gamma, attn_strength(l));
        amplify_hot(lw.ffn_norm_gamma, ffn_strength(l));
        for (const auto& spec : config.LayerLinears()) {
            Tensor w = RandomLinear(rng, spec.k, spec.n);
            if (spec.kind == LinearKind::kWv) {
                amplify_columns(w, mw.v_hot_channels, 0.04);
            } else if (spec.kind == LinearKind::kFfnUp) {
                amplify_columns(w, mw.ffn_hot_channels, 0.04);
            }
            switch (spec.kind) {
              case LinearKind::kWq: lw.wq = std::move(w); break;
              case LinearKind::kWk: lw.wk = std::move(w); break;
              case LinearKind::kWv: lw.wv = std::move(w); break;
              case LinearKind::kWo: lw.wo = std::move(w); break;
              case LinearKind::kFfnGate: lw.w_gate = std::move(w); break;
              case LinearKind::kFfnUp: lw.w_up = std::move(w); break;
              case LinearKind::kFfnDown: lw.w_down = std::move(w); break;
            }
        }
        mw.layers.push_back(std::move(lw));
    }

    mw.final_norm_gamma = OnesWithJitter(rng, hidden);
    mw.final_norm_beta = Tensor::Zeros({1, hidden});

    // Pack every linear (and the tied lm_head) once at load so the tiled
    // kernels never pay a per-forward packing cost.
    mw.PackAllLinears();
    return mw;
}

}  // namespace llmnpu
