#include "src/model/decode_backend.h"

#include "src/util/check.h"

namespace llmnpu {

DecodeBackend::DecodeBackend(LinearExecutor& cpu_float,
                             LinearExecutor& npu_quant)
    : cpu_float_(cpu_float), npu_quant_(npu_quant)
{}

void
DecodeBackend::SetUniformPlacement(DecodePlacement placement)
{
    uniform_ = placement;
    step_placements_.clear();
}

void
DecodeBackend::SetStepPlacements(std::vector<DecodePlacement> placements)
{
    LLMNPU_CHECK(!placements.empty());
    step_placements_ = std::move(placements);
}

DecodePlacement
DecodeBackend::PlacementFor(size_t segment) const
{
    if (step_placements_.empty()) return uniform_;
    LLMNPU_CHECK_LT(segment, step_placements_.size());
    return step_placements_[segment];
}

std::string
DecodeBackend::Name() const
{
    return "decode[" + cpu_float_.Name() + "|" + npu_quant_.Name() + "]";
}

Tensor
DecodeBackend::Forward(int layer, LinearKind kind, const Tensor& x)
{
    const DecodePlacement placement = PlacementFor(0);
    if (placement == DecodePlacement::kNpuQuant) {
        ++stats_.npu_linear_calls;
        ++stats_.handoffs;
        stats_.quantized_elems += x.NumElements();
        Tensor y = npu_quant_.Forward(layer, kind, x);
        stats_.dequantized_elems += y.NumElements();
        return y;
    }
    ++stats_.cpu_linear_calls;
    return cpu_float_.Forward(layer, kind, x);
}

Tensor
DecodeBackend::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                            const BatchSegments& segments)
{
    CheckBatchSegments(x, segments);
    const size_t num_segments = segments.size() - 1;
    if (!step_placements_.empty()) {
        LLMNPU_CHECK_EQ(step_placements_.size(), num_segments);
    }

    // Uniform fast path: the whole stack goes to one executor.
    bool uniform = true;
    for (size_t i = 1; i < num_segments; ++i) {
        if (PlacementFor(i) != PlacementFor(0)) {
            uniform = false;
            break;
        }
    }
    if (uniform) {
        const DecodePlacement placement = PlacementFor(0);
        if (placement == DecodePlacement::kNpuQuant) {
            stats_.npu_linear_calls += static_cast<int64_t>(num_segments);
            ++stats_.handoffs;
            stats_.quantized_elems += x.NumElements();
            Tensor y = npu_quant_.ForwardBatch(layer, kind, x, segments);
            stats_.dequantized_elems += y.NumElements();
            return y;
        }
        stats_.cpu_linear_calls += static_cast<int64_t>(num_segments);
        return cpu_float_.ForwardBatch(layer, kind, x, segments);
    }

    // Mixed step: split into maximal contiguous same-placement runs, route
    // each run's sub-stack through its executor's ForwardBatch (bitwise
    // per-segment by both executors' contracts), scatter rows back.
    Tensor out;
    for (size_t first = 0; first < num_segments;) {
        const DecodePlacement placement = PlacementFor(first);
        size_t last = first + 1;
        while (last < num_segments && PlacementFor(last) == placement) {
            ++last;
        }
        const int64_t r0 = segments[first];
        const int64_t rows = segments[last] - r0;
        Tensor sub = x.CopyRows(r0, rows);
        BatchSegments sub_segments(last - first + 1);
        for (size_t i = first; i <= last; ++i) {
            sub_segments[i - first] = segments[i] - r0;
        }
        Tensor y;
        if (placement == DecodePlacement::kNpuQuant) {
            stats_.npu_linear_calls += static_cast<int64_t>(last - first);
            ++stats_.handoffs;
            stats_.quantized_elems += sub.NumElements();
            y = npu_quant_.ForwardBatch(layer, kind, sub, sub_segments);
            stats_.dequantized_elems += y.NumElements();
        } else {
            stats_.cpu_linear_calls += static_cast<int64_t>(last - first);
            y = cpu_float_.ForwardBatch(layer, kind, sub, sub_segments);
        }
        if (out.Rank() == 0) out = Tensor({x.Rows(), y.Cols()}, DType::kF32);
        out.PasteRows(y, r0);
        first = last;
    }
    return out;
}

}  // namespace llmnpu
