#include "src/model/decode_backend.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/check.h"

namespace llmnpu {

namespace {

/** Registry handles for the CPU/NPU boundary counters, resolved once (the
 *  registry leaks, so process-lifetime caching is safe). */
struct HandoffCounters
{
    obs::Counter& npu_linear_calls =
        obs::MetricsRegistry::Global().GetCounter("handoff.npu_linear_calls");
    obs::Counter& cpu_linear_calls =
        obs::MetricsRegistry::Global().GetCounter("handoff.cpu_linear_calls");
    obs::Counter& handoffs =
        obs::MetricsRegistry::Global().GetCounter("handoff.round_trips");
    obs::Counter& quantized_elems =
        obs::MetricsRegistry::Global().GetCounter("handoff.quantized_elems");
    obs::Counter& dequantized_elems =
        obs::MetricsRegistry::Global().GetCounter("handoff.dequantized_elems");
};

HandoffCounters&
Counters()
{
    static HandoffCounters* c = new HandoffCounters();
    return *c;
}

HandoffStats
RegistryTotals()
{
    HandoffCounters& c = Counters();
    HandoffStats s;
    s.npu_linear_calls = c.npu_linear_calls.value();
    s.cpu_linear_calls = c.cpu_linear_calls.value();
    s.handoffs = c.handoffs.value();
    s.quantized_elems = c.quantized_elems.value();
    s.dequantized_elems = c.dequantized_elems.value();
    return s;
}

}  // namespace

DecodeBackend::DecodeBackend(LinearExecutor& cpu_float,
                             LinearExecutor& npu_quant)
    : cpu_float_(cpu_float), npu_quant_(npu_quant), base_(RegistryTotals())
{}

HandoffStats
DecodeBackend::stats() const
{
    const HandoffStats now = RegistryTotals();
    HandoffStats s;
    s.npu_linear_calls = now.npu_linear_calls - base_.npu_linear_calls;
    s.cpu_linear_calls = now.cpu_linear_calls - base_.cpu_linear_calls;
    s.handoffs = now.handoffs - base_.handoffs;
    s.quantized_elems = now.quantized_elems - base_.quantized_elems;
    s.dequantized_elems = now.dequantized_elems - base_.dequantized_elems;
    return s;
}

void
DecodeBackend::ResetStats()
{
    base_ = RegistryTotals();
}

void
DecodeBackend::SetUniformPlacement(DecodePlacement placement)
{
    uniform_ = placement;
    step_placements_.clear();
}

void
DecodeBackend::SetStepPlacements(std::vector<DecodePlacement> placements)
{
    LLMNPU_CHECK(!placements.empty());
    step_placements_ = std::move(placements);
}

DecodePlacement
DecodeBackend::PlacementFor(size_t segment) const
{
    if (step_placements_.empty()) return uniform_;
    LLMNPU_CHECK_LT(segment, step_placements_.size());
    return step_placements_[segment];
}

std::string
DecodeBackend::Name() const
{
    return "decode[" + cpu_float_.Name() + "|" + npu_quant_.Name() + "]";
}

Tensor
DecodeBackend::Forward(int layer, LinearKind kind, const Tensor& x)
{
    const DecodePlacement placement = PlacementFor(0);
    if (placement == DecodePlacement::kNpuQuant) {
        HandoffCounters& c = Counters();
        c.npu_linear_calls.Add(1);
        c.handoffs.Add(1);
        c.quantized_elems.Add(x.NumElements());
        LLMNPU_TRACE_SPAN_TILE("handoff.npu_linear", "handoff", -1, -1,
                               layer, "rows", static_cast<int>(x.Rows()));
        Tensor y = npu_quant_.Forward(layer, kind, x);
        c.dequantized_elems.Add(y.NumElements());
        return y;
    }
    Counters().cpu_linear_calls.Add(1);
    return cpu_float_.Forward(layer, kind, x);
}

Tensor
DecodeBackend::ForwardBatch(int layer, LinearKind kind, const Tensor& x,
                            const BatchSegments& segments)
{
    CheckBatchSegments(x, segments);
    const size_t num_segments = segments.size() - 1;
    if (!step_placements_.empty()) {
        LLMNPU_CHECK_EQ(step_placements_.size(), num_segments);
    }

    HandoffCounters& c = Counters();

    // Uniform fast path: the whole stack goes to one executor.
    bool uniform = true;
    for (size_t i = 1; i < num_segments; ++i) {
        if (PlacementFor(i) != PlacementFor(0)) {
            uniform = false;
            break;
        }
    }
    if (uniform) {
        const DecodePlacement placement = PlacementFor(0);
        if (placement == DecodePlacement::kNpuQuant) {
            c.npu_linear_calls.Add(static_cast<int64_t>(num_segments));
            c.handoffs.Add(1);
            c.quantized_elems.Add(x.NumElements());
            LLMNPU_TRACE_SPAN_TILE("handoff.npu_batch", "handoff", -1, -1,
                                   layer, "rows", static_cast<int>(x.Rows()));
            Tensor y = npu_quant_.ForwardBatch(layer, kind, x, segments);
            c.dequantized_elems.Add(y.NumElements());
            return y;
        }
        c.cpu_linear_calls.Add(static_cast<int64_t>(num_segments));
        return cpu_float_.ForwardBatch(layer, kind, x, segments);
    }

    // Mixed step: split into maximal contiguous same-placement runs, route
    // each run's sub-stack through its executor's ForwardBatch (bitwise
    // per-segment by both executors' contracts), scatter rows back.
    Tensor out;
    for (size_t first = 0; first < num_segments;) {
        const DecodePlacement placement = PlacementFor(first);
        size_t last = first + 1;
        while (last < num_segments && PlacementFor(last) == placement) {
            ++last;
        }
        const int64_t r0 = segments[first];
        const int64_t rows = segments[last] - r0;
        Tensor sub = x.CopyRows(r0, rows);
        BatchSegments sub_segments(last - first + 1);
        for (size_t i = first; i <= last; ++i) {
            sub_segments[i - first] = segments[i] - r0;
        }
        Tensor y;
        if (placement == DecodePlacement::kNpuQuant) {
            c.npu_linear_calls.Add(static_cast<int64_t>(last - first));
            c.handoffs.Add(1);
            c.quantized_elems.Add(sub.NumElements());
            LLMNPU_TRACE_SPAN_TILE("handoff.npu_run", "handoff", -1, -1,
                                   layer, "rows", static_cast<int>(sub.Rows()));
            y = npu_quant_.ForwardBatch(layer, kind, sub, sub_segments);
            c.dequantized_elems.Add(y.NumElements());
        } else {
            c.cpu_linear_calls.Add(static_cast<int64_t>(last - first));
            y = cpu_float_.ForwardBatch(layer, kind, sub, sub_segments);
        }
        if (out.Rank() == 0) out = Tensor({x.Rows(), y.Cols()}, DType::kF32);
        out.PasteRows(y, r0);
        first = last;
    }
    return out;
}

}  // namespace llmnpu
