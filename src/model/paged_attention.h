/**
 * @file
 * Fused batched causal attention over paged KV.
 *
 * The old batched path looped attention per sequence, each iteration
 * copying the sequence's Q segment out of the stacked activation,
 * materializing its whole K/V history into dense tensors, and pasting the
 * result back — three copies per sequence per layer on the decode hot
 * path. This kernel fuses the loop: one call covers every sequence of the
 * batch, reads K/V directly out of the pool pages through each sequence's
 * page table, writes straight into the stacked output, and tile-parallels
 * the work across the persistent ThreadPool.
 *
 * Parallel shape: one tile = one (sequence, query head) pair, so B
 * sequences x H heads tiles per call — enough parallelism at B=64+ decode
 * to keep every core busy on what is otherwise the float-side critical
 * path of NPU decode. Tiles write disjoint output regions and the per-tile
 * arithmetic is a fixed sequential reduction, so output is bitwise
 * identical at any thread count and bitwise identical to the per-sequence
 * CausalAttention reference (same dot/softmax/accumulate ordering) — the
 * batched-equals-sequential contract extends through this kernel
 * unchanged.
 */
#ifndef LLMNPU_MODEL_PAGED_ATTENTION_H
#define LLMNPU_MODEL_PAGED_ATTENTION_H

#include <cstdint>
#include <vector>

#include "src/model/batched_kv_cache.h"
#include "src/tensor/tensor.h"

namespace llmnpu {

/**
 * Causal grouped-query attention for B stacked sequences over paged KV.
 *
 * @param q stacked RoPE'd queries [sum(m_i) x num_heads*head_dim]; rows
 *        [segments[i], segments[i+1]) belong to sequence i.
 * @param segments stacked-row boundaries, size B+1.
 * @param seqs cache slot of each batch member, size B.
 * @param pos_offsets global position of each member's first Q row, size B;
 *        member i attends to its cache positions <= pos_offsets[i] + r.
 * @param cache the paged KV holding every member's appended K/V history
 *        for `layer` (this step's rows included).
 * @return stacked attention output, same shape as `q`.
 */
Tensor PagedCausalAttention(const Tensor& q, const std::vector<int64_t>& segments,
                            const std::vector<int>& seqs,
                            const std::vector<int64_t>& pos_offsets,
                            const BatchedKvCache& cache, int layer,
                            int num_heads, int num_kv_heads);

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_PAGED_ATTENTION_H
