/**
 * @file
 * Paged multi-sequence KV cache.
 *
 * The batched forward path (Transformer::ForwardBatch) runs B sequences of
 * possibly different lengths through one set of stacked matmuls, with
 * attention reading each sequence's own K/V history. Storage is
 * page-granular: every sequence owns a page table into one shared
 * KvPagePool instead of a private dense buffer, so
 *
 *  - retiring a sequence returns its pages to the pool immediately (the
 *    free list feeds the next admission),
 *  - a bounded pool turns KV memory into the admission-control resource
 *    the serving simulator models (CanAppend is the backpressure signal),
 *  - sequences can share the pages of a common prompt prefix (refcounted),
 *    with copy-on-write isolation: appending into a page another sequence
 *    still references clones the page, rewrites only the appender's page
 *    table entry, and releases one reference — so forks may start at any
 *    position (the partial frontier page is shared until the first
 *    divergent write) and diverge bitwise-identically to sequences that
 *    never shared, and
 *  - the fused attention kernel (src/model/paged_attention.h) reads K/V
 *    straight out of the pages, eliminating the per-sequence dense
 *    materialization and segment copies of the old decode hot path.
 *
 * Page tables are shared across layers: page id p of a sequence holds that
 * sequence's positions [i*page_size, (i+1)*page_size) for *every* layer
 * (the pool lays pages out as [layer][k|v][page_size x kv_dim]). Layers
 * append in lockstep within a forward step, layer 0 first, so page
 * allocation happens on the layer-0 append and later layers land in
 * already-mapped pages.
 *
 * All page/position arithmetic is int64 — a thousand-sequence pool at
 * mobile context lengths overflows 32-bit element counts long before it
 * overflows memory.
 */
#ifndef LLMNPU_MODEL_BATCHED_KV_CACHE_H
#define LLMNPU_MODEL_BATCHED_KV_CACHE_H

#include <cstdint>
#include <vector>

#include "src/model/kv_page_pool.h"
#include "src/tensor/tensor.h"

namespace llmnpu {

/** Growable set of paged per-sequence KV views over one shared pool. */
class BatchedKvCache
{
  public:
    /**
     * @param num_layers number of transformer blocks.
     * @param kv_dim per-position K (and V) width = num_kv_heads * head_dim.
     * @param num_sequences initial sequence slots (may be grown later).
     * @param options page geometry and pool budget.
     */
    BatchedKvCache(int num_layers, int64_t kv_dim, int num_sequences = 0,
                   PagedKvOptions options = {});

    /** Adds an empty sequence slot; @return its index. */
    int AddSequence();

    /**
     * Adds a sequence sharing the first `positions` positions of `src`'s
     * pages (a common system-prompt run). `positions` may fall anywhere
     * <= SeqLen(src): whole pages below it are shared outright, and a
     * partial frontier page is shared too — the first write past the fork
     * point (by either side) copy-on-writes it, so divergence never leaks
     * between siblings. The caller asserts the shared positions hold
     * identical tokens; the cache only shares the storage.
     * @return the new slot's index.
     */
    int AddSequenceSharingPrefix(int src, int64_t positions);

    /** Releases a sequence's pages back to the pool and marks the slot
     *  retired. Retired slots reject all further access; the slot index is
     *  never reused (page *storage* is what gets recycled). */
    void RetireSequence(int seq);

    bool IsRetired(int seq) const;

    /** True when the pool can absorb `positions` more positions appended
     *  to `seq` — growth pages plus one copy-on-write clone for each
     *  still-shared page the write range touches (the admission / eviction
     *  backpressure signal). Always true for an unbounded pool. */
    bool CanAppend(int seq, int64_t positions) const;

    /**
     * Appends rows [row_begin, row_begin + row_count) of `k`/`v`
     * ([* x kv_dim]) for one layer of one sequence, straight from a
     * stacked batch tensor into the pages — no segment copy. A target page
     * still referenced by a sibling (shared prefix frontier) is cloned
     * first: only this sequence's page table moves to the copy, and one
     * reference on the original is released. Enforces the layer-lockstep
     * invariant: layer 0 of a step appends first, no layer may lead the
     * shortest layer by more than the in-flight chunk, and a layer > 0
     * never leads layer 0. Panics if a bounded pool runs out of pages —
     * callers gate on CanAppend.
     */
    void AppendRows(int seq, int layer, const Tensor& k, const Tensor& v,
                    int64_t row_begin, int64_t row_count);

    /** AppendRows over all rows of `k`/`v`. */
    void Append(int seq, int layer, const Tensor& k, const Tensor& v);

    /** All cached keys of one layer of one sequence, materialized dense
     *  ([len x kv_dim]) — reference/test path; the fused kernel reads the
     *  pages directly instead. */
    Tensor Keys(int seq, int layer) const;
    Tensor Values(int seq, int layer) const;

    /** Positions cached for one slot (layer-0 length). */
    int64_t SeqLen(int seq) const;
    int64_t SeqLen(int seq, int layer) const;

    /** The slot's page table (page ids into the pool, position order). */
    const std::vector<int64_t>& PageTable(int seq) const;

    int num_sequences() const { return static_cast<int>(seqs_.size()); }
    /** Slots added and not yet retired. */
    int live_sequences() const { return live_; }
    int num_layers() const { return num_layers_; }
    int64_t kv_dim() const { return kv_dim_; }
    int64_t page_size() const { return pool_.page_size(); }

    KvPagePool& pool() { return pool_; }
    const KvPagePool& pool() const { return pool_; }

    /** Bytes of pool pages currently in use (page-granular, shared prefix
     *  pages counted once — the honest footprint). */
    int64_t SizeBytes() const { return pool_.SizeBytes(); }

  private:
    struct SeqState {
        std::vector<int64_t> pages;      ///< page table, position order
        std::vector<int64_t> layer_len;  ///< positions appended per layer
        bool retired = false;
    };

    const SeqState& CheckedSeq(int seq) const;
    SeqState& CheckedSeq(int seq);

    int num_layers_;
    int64_t kv_dim_;
    KvPagePool pool_;
    std::vector<SeqState> seqs_;
    int live_ = 0;
};

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_BATCHED_KV_CACHE_H
