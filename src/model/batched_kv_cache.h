/**
 * @file
 * A batch of per-sequence KV caches behind one view.
 *
 * The batched forward path (Transformer::ForwardBatch) runs B sequences of
 * possibly different lengths through one set of stacked matmuls, but
 * attention stays strictly per-sequence: each sequence reads and appends
 * only its own K/V history. BatchedKvCache owns one KvCache per sequence
 * slot and provides the aggregate accounting the serving layer wants
 * (total bytes, per-slot lengths).
 */
#ifndef LLMNPU_MODEL_BATCHED_KV_CACHE_H
#define LLMNPU_MODEL_BATCHED_KV_CACHE_H

#include <vector>

#include "src/model/kv_cache.h"

namespace llmnpu {

/** Growable set of per-sequence KV caches sharing one model geometry. */
class BatchedKvCache
{
  public:
    /**
     * @param num_layers number of transformer blocks.
     * @param kv_dim per-position K (and V) width = num_kv_heads * head_dim.
     * @param num_sequences initial sequence slots (may be grown later).
     */
    BatchedKvCache(int num_layers, int64_t kv_dim, int num_sequences = 0);

    /** Adds an empty sequence slot; @return its index. */
    int AddSequence();

    /** The per-sequence cache of one slot. */
    KvCache& Sequence(int seq);
    const KvCache& Sequence(int seq) const;

    int num_sequences() const { return static_cast<int>(seqs_.size()); }
    int num_layers() const { return num_layers_; }
    int64_t kv_dim() const { return kv_dim_; }

    /** Positions cached for one slot (layer-0 length, layers in lockstep). */
    int64_t SeqLen(int seq) const { return Sequence(seq).SeqLen(); }

    /** Bytes held across all sequences and layers (f32). */
    int64_t SizeBytes() const;

  private:
    int num_layers_;
    int64_t kv_dim_;
    std::vector<KvCache> seqs_;
};

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_BATCHED_KV_CACHE_H
