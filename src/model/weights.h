/**
 * @file
 * Synthetic model weights with the activation-outlier structure the paper
 * measures on real LLMs (Figures 10-11).
 *
 * Substitution note (DESIGN.md §2): real trained checkpoints are not
 * available offline, so weights are generated with a fixed seed such that
 * (a) activations are well-scaled (unit-variance residual stream), and
 * (b) a small set of "hot" hidden channels carries large, token-dependent
 * activation outliers — the property that drives per-tensor quantization
 * error, and hence everything §3.3 is designed around.
 */
#ifndef LLMNPU_MODEL_WEIGHTS_H
#define LLMNPU_MODEL_WEIGHTS_H

#include <vector>

#include "src/model/config.h"
#include "src/tensor/matmul.h"
#include "src/tensor/tensor.h"

namespace llmnpu {

/** All parameters of one transformer block (f32 master copies). */
struct LayerWeights {
    Tensor attn_norm_gamma;
    Tensor attn_norm_beta;  ///< used only with LayerNorm models
    Tensor wq, wk, wv, wo;  ///< [k x n], y = x @ W
    Tensor ffn_norm_gamma;
    Tensor ffn_norm_beta;
    Tensor w_gate;  ///< present only for gated FFN models
    Tensor w_up, w_down;
};

/** Options controlling synthetic weight generation. */
struct SyntheticWeightsOptions {
    uint64_t seed = 0x11f;
    /** Fraction of hidden channels designated as outlier-prone ("hot"). */
    double hot_channel_frac = 0.03;
    /** Mean multiplicative amplification of hot channels in the important
     *  linears. Real LLMs show outliers 20-100x the typical magnitude
     *  [33, 84]; SmoothQuant-style migration only absorbs ~sqrt of it. */
    double outlier_amplitude = 40.0;
    /** Probability a given token activates a given hot channel. */
    double token_activation_prob = 0.4;
};

/** A full model: config + embedding + blocks + final norm. */
struct ModelWeights {
    ModelConfig config;
    Tensor embedding;  ///< [vocab x hidden]; lm_head is tied (transposed)
    std::vector<LayerWeights> layers;
    Tensor final_norm_gamma;
    Tensor final_norm_beta;
    /** Ground-truth injected hot channels (ascending), for test oracles. */
    std::vector<int> hot_channels;
    /** Hot output columns of wv (make o_proj inputs outlier-prone). */
    std::vector<int> v_hot_channels;
    /** Hot output columns of w_up (make down_proj inputs outlier-prone). */
    std::vector<int> ffn_hot_channels;

    /** The f32 weight matrix of one linear operator. */
    const Tensor& Linear(int layer, LinearKind kind) const;

    /** Mutable access to one linear; invalidates its packed panels. */
    Tensor& MutableLinear(int layer, LinearKind kind);

    /**
     * Panel-major packed panels of one linear for the tiled kernels
     * (matmul.h). GenerateSyntheticWeights packs every linear once at
     * load; after MutableLinear() mutations the entry is re-packed lazily
     * on next access. Not thread-safe on a cache miss (pack at setup, not
     * from inside kernels).
     */
    const PackedWeightsF32& PackedLinear(int layer, LinearKind kind) const;

    /**
     * Packed transposed embedding (the tied lm_head): [hidden x vocab],
     * cached from the load-time embedding. Like PackedLinear(), the cache
     * reflects the values at pack time: mutate linears only through
     * MutableLinear() (which invalidates the panels) and treat the public
     * `embedding`/`layers` fields as frozen after load — direct writes
     * bypass invalidation and the packed copies go stale.
     */
    const PackedWeightsF32& PackedLmHead() const;

    /** Pre-packs every linear and the lm_head (the load-time pack step). */
    void PackAllLinears();

  private:
    /** Packed panels per layer, indexed by LinearKind order; empty entries
     *  are re-packed on demand. */
    mutable std::vector<std::vector<PackedWeightsF32>> packed_linears_;
    mutable PackedWeightsF32 packed_lm_head_;
};

/** Generates deterministic synthetic weights for `config`. */
ModelWeights GenerateSyntheticWeights(const ModelConfig& config,
                                      const SyntheticWeightsOptions& opts = {});

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_WEIGHTS_H
