#include "src/model/paged_attention.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"
#include "src/util/check.h"
#include "src/util/threadpool.h"

namespace llmnpu {

Tensor
PagedCausalAttention(const Tensor& q, const std::vector<int64_t>& segments,
                     const std::vector<int>& seqs,
                     const std::vector<int64_t>& pos_offsets,
                     const BatchedKvCache& cache, int layer, int num_heads,
                     int num_kv_heads)
{
    LLMNPU_CHECK_EQ(q.Rank(), 2);
    LLMNPU_CHECK_GE(segments.size(), 2u);
    const size_t b = segments.size() - 1;
    LLMNPU_CHECK_EQ(seqs.size(), b);
    LLMNPU_CHECK_EQ(pos_offsets.size(), b);
    LLMNPU_CHECK_EQ(segments.front(), 0);
    LLMNPU_CHECK_EQ(segments.back(), q.Rows());
    LLMNPU_CHECK_EQ(q.Cols() % num_heads, 0);
    LLMNPU_CHECK_EQ(num_heads % num_kv_heads, 0);
    const int head_dim = static_cast<int>(q.Cols()) / num_heads;
    LLMNPU_CHECK_EQ(static_cast<int64_t>(num_kv_heads) * head_dim,
                    cache.kv_dim());

    const int heads_per_kv = num_heads / num_kv_heads;
    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
    const int64_t kv_dim = cache.kv_dim();
    const int64_t ps = cache.page_size();
    const KvPagePool& pool = cache.pool();

    // Every member's history (this step's rows included) must already be
    // appended, and the page tables must cover it.
    for (size_t i = 0; i < b; ++i) {
        const int64_t q_len = segments[i + 1] - segments[i];
        LLMNPU_CHECK_GE(cache.SeqLen(seqs[i], layer),
                        pos_offsets[i] + q_len);
    }

    Tensor out({q.Rows(), q.Cols()}, DType::kF32);
    const float* pq = q.Data<float>();
    float* po = out.Data<float>();
    const int64_t q_cols = q.Cols();

    // One tile = one (sequence, head) pair: disjoint output regions, a
    // fixed per-tile reduction order, hence bitwise-deterministic output
    // for any block partition the pool picks.
    const int64_t tiles = static_cast<int64_t>(b) * num_heads;
    LLMNPU_TRACE_SPAN_ID("attention.paged", "attention", -1, -1, layer);
    ThreadPool::Global().ParallelFor(
        tiles, /*grain=*/1, [&](int64_t begin, int64_t end) {
            std::vector<float> scores;
            std::vector<float> acc(static_cast<size_t>(head_dim));
            for (int64_t tile = begin; tile < end; ++tile) {
                const size_t i = static_cast<size_t>(tile / num_heads);
                const int h = static_cast<int>(tile % num_heads);
                LLMNPU_TRACE_SPAN_TILE("attention.tile", "attention", -1,
                                       seqs[i], layer, "head", h);
                const int kv_h = h / heads_per_kv;
                const int64_t q_off = static_cast<int64_t>(h) * head_dim;
                const int64_t kv_off =
                    static_cast<int64_t>(kv_h) * head_dim;
                const int64_t r0 = segments[i];
                const int64_t q_len = segments[i + 1] - r0;
                const std::vector<int64_t>& pages =
                    cache.PageTable(seqs[i]);

                for (int64_t r = 0; r < q_len; ++r) {
                    const int64_t visible = pos_offsets[i] + r + 1;
                    scores.assign(static_cast<size_t>(visible), 0.0f);
                    const float* qrow = pq + (r0 + r) * q_cols + q_off;
                    float mx = -1e30f;
                    // Walk page-contiguous runs: the page lookup and
                    // div/mod happen once per page, not once per position.
                    // The position order (and hence float op order) is
                    // unchanged, preserving the bitwise contract.
                    for (int64_t j = 0; j < visible;) {
                        const int64_t run =
                            std::min(visible - j, ps - j % ps);
                        const float* krow =
                            pool.PageK(pages[static_cast<size_t>(j / ps)],
                                       layer) +
                            (j % ps) * kv_dim + kv_off;
                        for (const int64_t e = j + run; j < e;
                             ++j, krow += kv_dim) {
                            float dot = 0.0f;
                            for (int d = 0; d < head_dim; ++d) {
                                dot += qrow[d] * krow[d];
                            }
                            scores[static_cast<size_t>(j)] = dot * scale;
                            mx = std::max(mx,
                                          scores[static_cast<size_t>(j)]);
                        }
                    }
                    double sum = 0.0;
                    for (int64_t j = 0; j < visible; ++j) {
                        scores[static_cast<size_t>(j)] =
                            std::exp(scores[static_cast<size_t>(j)] - mx);
                        sum += scores[static_cast<size_t>(j)];
                    }
                    const float inv = static_cast<float>(1.0 / sum);
                    std::fill(acc.begin(), acc.end(), 0.0f);
                    for (int64_t j = 0; j < visible;) {
                        const int64_t run =
                            std::min(visible - j, ps - j % ps);
                        const float* vrow =
                            pool.PageV(pages[static_cast<size_t>(j / ps)],
                                       layer) +
                            (j % ps) * kv_dim + kv_off;
                        for (const int64_t e = j + run; j < e;
                             ++j, vrow += kv_dim) {
                            const float w =
                                scores[static_cast<size_t>(j)] * inv;
                            for (int d = 0; d < head_dim; ++d) {
                                acc[static_cast<size_t>(d)] += w * vrow[d];
                            }
                        }
                    }
                    float* orow = po + (r0 + r) * q_cols + q_off;
                    std::copy(acc.begin(), acc.end(), orow);
                }
            }
        });
    return out;
}

}  // namespace llmnpu
