/**
 * @file
 * Per-layer key/value cache for chunked prefill and decoding.
 *
 * The cache is the mechanism that makes chunk-wise prefill exact: chunk i's
 * attention reads keys/values of chunks 0..i (paper §3.2, Figure 7).
 */
#ifndef LLMNPU_MODEL_KV_CACHE_H
#define LLMNPU_MODEL_KV_CACHE_H

#include <vector>

#include "src/tensor/tensor.h"

namespace llmnpu {

/** Growable K/V storage for every transformer layer. */
class KvCache
{
  public:
    /**
     * @param num_layers number of transformer blocks.
     * @param kv_dim per-position K (and V) width = num_kv_heads * head_dim.
     */
    KvCache(int num_layers, int64_t kv_dim);

    /**
     * Appends `k` and `v` ([n x kv_dim]) for one layer.
     *
     * Enforces the layer-lockstep invariant the accessors rely on: a forward
     * pass appends one chunk to layer 0 first and then to every later layer
     * in turn, so after any append (a) no layer may lead the shortest layer
     * by more than the in-flight chunk (`n` rows) and (b) a layer > 0 may
     * never lead layer 0. Appending a second chunk to a layer before every
     * other layer has received the first is a caller bug and panics.
     */
    void Append(int layer, const Tensor& k, const Tensor& v);

    /** All cached keys for a layer as a [len x kv_dim] tensor. */
    Tensor Keys(int layer) const;

    /** All cached values for a layer as a [len x kv_dim] tensor. */
    Tensor Values(int layer) const;

    /** Number of positions cached for a layer. */
    int64_t SeqLen(int layer) const;

    /** Positions cached in layer 0 (callers keep layers in lockstep). */
    int64_t SeqLen() const { return SeqLen(0); }

    int num_layers() const { return static_cast<int>(k_.size()); }
    int64_t kv_dim() const { return kv_dim_; }

    /** Bytes held across all layers (f32). */
    int64_t SizeBytes() const;

  private:
    int64_t kv_dim_;
    std::vector<std::vector<float>> k_;
    std::vector<std::vector<float>> v_;
};

}  // namespace llmnpu

#endif  // LLMNPU_MODEL_KV_CACHE_H
