#include "src/model/kv_page_pool.h"

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace llmnpu {

namespace {

/** Registry handles resolved once; the registry leaks, so these are safe
 *  to cache for the process lifetime. */
struct KvPoolMetrics
{
    obs::Counter& alloc =
        obs::MetricsRegistry::Global().GetCounter("kv_pool.alloc");
    obs::Counter& alloc_fail =
        obs::MetricsRegistry::Global().GetCounter("kv_pool.alloc_fail");
    obs::Counter& release =
        obs::MetricsRegistry::Global().GetCounter("kv_pool.release");
    obs::Counter& cow_clone =
        obs::MetricsRegistry::Global().GetCounter("kv_pool.cow_clone");
    obs::Gauge& used =
        obs::MetricsRegistry::Global().GetGauge("kv_pool.used_pages");
};

KvPoolMetrics&
PoolMetrics()
{
    static KvPoolMetrics* m = new KvPoolMetrics();
    return *m;
}

}  // namespace

KvPagePool::KvPagePool(int num_layers, int64_t kv_dim, PagedKvOptions options)
    : num_layers_(num_layers), kv_dim_(kv_dim), options_(options)
{
    LLMNPU_CHECK_GT(num_layers, 0);
    LLMNPU_CHECK_GT(kv_dim, 0);
    LLMNPU_CHECK_GT(options_.page_size, 0);
    LLMNPU_CHECK_GE(options_.max_pages, 0);
}

int64_t
KvPagePool::PageFloats() const
{
    return static_cast<int64_t>(num_layers_) * 2 * options_.page_size *
           kv_dim_;
}

int64_t
KvPagePool::PageBytes() const
{
    return PageFloats() * static_cast<int64_t>(sizeof(float));
}

int64_t
KvPagePool::PagesFor(int64_t positions) const
{
    LLMNPU_CHECK_GE(positions, 0);
    return (positions + options_.page_size - 1) / options_.page_size;
}

int64_t
KvPagePool::free_pages() const
{
    if (options_.max_pages == 0) return kUnboundedFreePages;
    return static_cast<int64_t>(free_list_.size()) + options_.max_pages -
           allocated_pages();
}

int64_t
KvPagePool::AllocPage()
{
    int64_t page;
    if (!free_list_.empty()) {
        page = free_list_.back();
        free_list_.pop_back();
    } else {
        if (options_.max_pages > 0 && allocated_pages() >= options_.max_pages) {
            PoolMetrics().alloc_fail.Add(1);
            LLMNPU_TRACE_INSTANT("kv_pool.alloc_fail", "kv");
            return -1;
        }
        page = allocated_pages();
        pages_.emplace_back(static_cast<size_t>(PageFloats()));
        refcount_.push_back(0);
    }
    LLMNPU_CHECK_EQ(refcount_[static_cast<size_t>(page)], 0);
    refcount_[static_cast<size_t>(page)] = 1;
    ++used_pages_;
    PoolMetrics().alloc.Add(1);
    PoolMetrics().used.Set(static_cast<double>(used_pages_));
    LLMNPU_TRACE_COUNTER("kv_pool.used_pages",
                         static_cast<double>(used_pages_));
    return page;
}

int64_t
KvPagePool::ClonePage(int64_t src)
{
    LLMNPU_CHECK_GE(src, 0);
    LLMNPU_CHECK_LT(src, allocated_pages());
    LLMNPU_CHECK_GT(refcount_[static_cast<size_t>(src)], 0);
    const int64_t clone = AllocPage();
    if (clone < 0) return -1;
    // Whole-buffer copy: a CoW write targets one layer, but the sibling
    // layers' shared rows live in the same physical page and the cloning
    // sequence still needs them after its table points at the copy.
    pages_[static_cast<size_t>(clone)] = pages_[static_cast<size_t>(src)];
    ++cow_clones_;
    PoolMetrics().cow_clone.Add(1);
    LLMNPU_TRACE_INSTANT("kv_pool.cow_clone", "kv");
    return clone;
}

void
KvPagePool::AddRef(int64_t page)
{
    LLMNPU_CHECK_GE(page, 0);
    LLMNPU_CHECK_LT(page, allocated_pages());
    LLMNPU_CHECK_GT(refcount_[static_cast<size_t>(page)], 0);
    ++refcount_[static_cast<size_t>(page)];
}

void
KvPagePool::Release(int64_t page)
{
    LLMNPU_CHECK_GE(page, 0);
    LLMNPU_CHECK_LT(page, allocated_pages());
    int64_t& refs = refcount_[static_cast<size_t>(page)];
    LLMNPU_CHECK_GT(refs, 0);
    if (--refs == 0) {
        free_list_.push_back(page);
        --used_pages_;
        PoolMetrics().release.Add(1);
        PoolMetrics().used.Set(static_cast<double>(used_pages_));
        LLMNPU_TRACE_COUNTER("kv_pool.used_pages",
                             static_cast<double>(used_pages_));
    }
}

int64_t
KvPagePool::RefCount(int64_t page) const
{
    LLMNPU_CHECK_GE(page, 0);
    LLMNPU_CHECK_LT(page, allocated_pages());
    return refcount_[static_cast<size_t>(page)];
}

float*
KvPagePool::PageK(int64_t page, int layer)
{
    LLMNPU_CHECK_GE(page, 0);
    LLMNPU_CHECK_LT(page, allocated_pages());
    LLMNPU_CHECK_GE(layer, 0);
    LLMNPU_CHECK_LT(layer, num_layers_);
    return pages_[static_cast<size_t>(page)].data() +
           static_cast<int64_t>(layer) * 2 * options_.page_size * kv_dim_;
}

const float*
KvPagePool::PageK(int64_t page, int layer) const
{
    return const_cast<KvPagePool*>(this)->PageK(page, layer);
}

float*
KvPagePool::PageV(int64_t page, int layer)
{
    return PageK(page, layer) + options_.page_size * kv_dim_;
}

const float*
KvPagePool::PageV(int64_t page, int layer) const
{
    return const_cast<KvPagePool*>(this)->PageV(page, layer);
}

}  // namespace llmnpu
